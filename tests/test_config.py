"""Tests for the configuration objects and cost model."""

from __future__ import annotations

import pytest

from repro.common.config import (
    BlockCutPolicy,
    CostModel,
    LatencyConfig,
    SystemConfig,
    default_tau,
)
from repro.common.errors import ConfigurationError


class TestCostModel:
    def test_dependency_graph_cost_is_quadratic(self):
        cost = CostModel()
        assert cost.dependency_graph_cost(0) == 0.0
        assert cost.dependency_graph_cost(1) == 0.0
        small = cost.dependency_graph_cost(100)
        large = cost.dependency_graph_cost(200)
        assert large / small == pytest.approx(200 * 199 / (100 * 99), rel=1e-6)

    def test_negative_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().dependency_graph_cost(-1)

    def test_scaled(self):
        base = CostModel()
        doubled = base.scaled(2.0)
        assert doubled.tx_execution == pytest.approx(2 * base.tx_execution)
        assert doubled.signature == pytest.approx(2 * base.signature)
        with pytest.raises(ConfigurationError):
            base.scaled(0.0)


class TestLatencyConfig:
    def test_transfer_delay(self):
        latency = LatencyConfig(bandwidth_bytes_per_sec=1000.0)
        assert latency.transfer_delay(500) == pytest.approx(0.5)
        assert latency.transfer_delay(0) == 0.0


class TestBlockCutPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockCutPolicy(max_transactions=0)
        with pytest.raises(ConfigurationError):
            BlockCutPolicy(max_delay=0.0)


class TestSystemConfig:
    def test_defaults_match_paper_testbed(self):
        config = SystemConfig()
        assert config.num_orderers == 3
        assert config.num_applications == 3
        assert config.num_executors == 3
        assert config.cores_per_node == 8
        assert config.block_cut.max_transactions == 200

    def test_with_block_size(self):
        config = SystemConfig().with_block_size(100)
        assert config.block_cut.max_transactions == 100
        assert SystemConfig().block_cut.max_transactions == 200  # original untouched

    def test_with_far_groups_validation(self):
        config = SystemConfig().with_far_groups(["clients"])
        assert config.far_groups == ("clients",)
        with pytest.raises(ConfigurationError):
            SystemConfig(far_groups=["mars"])

    def test_consensus_quorum_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(consensus_protocol="pbft", max_faulty_orderers=1, num_orderers=3)
        config = SystemConfig(consensus_protocol="pbft", max_faulty_orderers=1, num_orderers=4)
        assert config.max_faulty_orderers == 1
        with pytest.raises(ConfigurationError):
            SystemConfig(consensus_protocol="tendermint")

    def test_tau_defaults_and_overrides(self):
        config = SystemConfig(tau={"app-0": 2})
        assert config.tau_for("app-0") == 2
        assert config.tau_for("app-1") == 1
        assert default_tau(["a", "b"], 3) == {"a": 3, "b": 3}
        with pytest.raises(ConfigurationError):
            default_tau(["a"], 0)

    def test_application_names(self):
        assert SystemConfig(num_applications=2).application_names() == ["app-0", "app-1"]
