"""Tests for the general conflict model and its key chooser."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.workload import ConflictModel, KeyChooser, WorkloadConfig


class TestConflictModelValidation:
    def test_defaults_valid(self):
        model = ConflictModel()
        assert model.keyspace == 1024
        assert model.hot_set_size == 10

    @pytest.mark.parametrize(
        "field,value,fragment",
        [
            ("keyspace", 0, "keyspace must be a positive integer"),
            ("keyspace", -3, "keyspace must be a positive integer"),
            ("zipf_exponent", -0.1, "zipf_exponent must be >= 0"),
            ("hot_fraction", 1.5, "hot_fraction must be in [0, 1]"),
            ("hot_fraction", -0.2, "hot_fraction must be in [0, 1]"),
            ("read_set_size", 0, "read_set_size must be a positive integer"),
            ("write_set_size", -1, "write_set_size must be a positive integer"),
            ("spill", 2.0, "spill must be in [0, 1]"),
        ],
    )
    def test_errors_name_field_and_range(self, field, value, fragment):
        with pytest.raises(ConfigurationError) as excinfo:
            ConflictModel(**{field: value})
        assert fragment in str(excinfo.value)
        assert repr(value) in str(excinfo.value)

    def test_unknown_selection_lists_choices(self):
        with pytest.raises(ConfigurationError, match="uniform.*zipfian|zipfian.*uniform"):
            ConflictModel(selection="pareto")

    def test_hot_set_size_has_floor_of_one(self):
        assert ConflictModel(keyspace=10, hot_fraction=0.0).hot_set_size == 1
        assert ConflictModel(keyspace=100, hot_fraction=0.25).hot_set_size == 25

    @pytest.mark.parametrize("field", ["keyspace", "read_set_size", "write_set_size"])
    def test_count_fields_reject_floats(self, field):
        # A TOML spec writing `keyspace = 256.0` must fail at validation
        # time with the field named, not crash later inside randrange().
        with pytest.raises(ConfigurationError, match=f"{field} must be a positive integer"):
            ConflictModel(**{field: 10.5})


class TestWorkloadConfigIntegration:
    def test_nested_conflict_overrides(self):
        config = WorkloadConfig().with_overrides(
            conflict={"selection": "zipfian", "keyspace": 64, "spill": 0.3}
        )
        assert config.conflict.selection == "zipfian"
        assert config.conflict.keyspace == 64
        assert config.conflict.spill == 0.3
        # Untouched nested fields keep their defaults.
        assert config.conflict.read_set_size == 1

    def test_conflict_accepts_mapping_at_construction(self):
        config = WorkloadConfig(conflict={"keyspace": 32})
        assert isinstance(config.conflict, ConflictModel)
        assert config.conflict.keyspace == 32

    def test_nested_validation_propagates(self):
        with pytest.raises(ConfigurationError, match="keyspace must be a positive integer"):
            WorkloadConfig().with_overrides(conflict={"keyspace": 0})

    @pytest.mark.parametrize("build", [
        lambda: WorkloadConfig(conflict={"keyspce": 5}),
        lambda: WorkloadConfig().with_overrides(conflict={"keyspce": 5}),
    ])
    def test_unknown_conflict_key_names_field(self, build):
        with pytest.raises(ConfigurationError, match="keyspce"):
            build()

    @pytest.mark.parametrize(
        "field,value,fragment",
        [
            ("num_applications", 0, "num_applications must be a positive integer"),
            ("num_clients", -1, "num_clients must be a positive integer"),
            ("contention", 1.5, "contention must be in [0, 1]"),
            ("transfer_amount", 0, "transfer_amount must be positive"),
            ("initial_balance", -1.0, "initial_balance must be positive"),
            ("hot_accounts", 0, "hot_accounts must be a positive integer"),
        ],
    )
    def test_workload_config_errors_name_field_and_value(self, field, value, fragment):
        with pytest.raises(ConfigurationError) as excinfo:
            WorkloadConfig(**{field: value})
        message = str(excinfo.value)
        assert fragment in message
        assert repr(value) in message

    def test_conflict_scope_coerced_and_rejected_at_construction(self):
        from repro.workload import ConflictScope

        assert (
            WorkloadConfig(conflict_scope="cross_application").conflict_scope
            is ConflictScope.CROSS_APPLICATION
        )
        with pytest.raises(ConfigurationError, match="conflict_scope must be one of"):
            WorkloadConfig(conflict_scope="sideways")


class TestKeyChooser:
    def _chooser(self, seed=7, **model_kwargs):
        return KeyChooser(ConflictModel(**model_kwargs), random.Random(seed))

    def test_uniform_draws_cover_keyspace(self):
        chooser = self._chooser(keyspace=8)
        seen = {chooser.key_index() for _ in range(400)}
        assert seen == set(range(8))

    def test_zipfian_draws_are_skewed_to_the_head(self):
        chooser = self._chooser(keyspace=50, selection="zipfian", zipf_exponent=1.2)
        samples = [chooser.key_index() for _ in range(2000)]
        head = sum(1 for s in samples if s < 5)
        assert head > len(samples) * 0.4
        assert all(0 <= s < 50 for s in samples)

    def test_hot_and_cold_regions_are_disjoint(self):
        chooser = self._chooser(keyspace=100, hot_fraction=0.1)
        assert all(chooser.hot_index() < 10 for _ in range(100))
        assert all(chooser.cold_index() >= 10 for _ in range(100))

    def test_cold_index_degenerates_gracefully(self):
        # hot_fraction 1.0 leaves no cold region; draws still succeed.
        chooser = self._chooser(keyspace=4, hot_fraction=1.0)
        assert 0 <= chooser.cold_index() < 4

    def test_distinct_indices_distinct_and_clamped(self):
        chooser = self._chooser(keyspace=5)
        picked = chooser.distinct_indices(10)
        assert sorted(picked) == [0, 1, 2, 3, 4]
        hot = self._chooser(keyspace=100, hot_fraction=0.02).distinct_indices(5, hot=True)
        assert len(hot) == 2  # hot set only has 2 keys

    def test_spill_redirects_some_accesses(self):
        chooser = self._chooser(spill=0.5)
        apps = ["app-0", "app-1", "app-2"]
        targets = {chooser.keyspace_application("app-0", apps) for _ in range(200)}
        assert "app-0" in targets
        assert targets - {"app-0"}  # some accesses spilled

    def test_no_spill_without_other_applications(self):
        chooser = self._chooser(spill=1.0)
        assert chooser.keyspace_application("app-0", ["app-0"]) == "app-0"

    def test_deterministic_for_equal_seeds(self):
        a = self._chooser(seed=3, selection="zipfian")
        b = self._chooser(seed=3, selection="zipfian")
        assert [a.key_index() for _ in range(50)] == [b.key_index() for _ in range(50)]
