"""Tests for the pluggable ordering protocols (PBFT, Raft, Kafka-style)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.consensus import KafkaOrdering, PBFTOrdering, RaftOrdering, make_ordering_service
from repro.crypto.signatures import KeyRegistry
from repro.network import FaultPlan, Network
from repro.simulation import Environment


def build_cluster(protocol: str, num_orderers: int, max_faulty: int = 0, faults=None):
    """Wire a cluster of orderers running ``protocol`` over a simulated network."""
    env = Environment()
    network = Network(env, faults=faults or FaultPlan())
    registry = KeyRegistry(seed="consensus-tests")
    peers = [f"orderer-{i}" for i in range(num_orderers)]
    decided = {name: [] for name in peers}
    services = {}
    for name in peers:
        registry.register(name)
        interface = network.register(name)
        services[name] = make_ordering_service(
            protocol,
            env=env,
            node_id=name,
            peers=peers,
            interface=interface,
            registry=registry,
            on_decide=lambda d, name=name: decided[name].append(d),
            max_faulty=max_faulty,
        )

    def node_loop(env, service, interface):
        while True:
            envelope = yield interface.receive()
            yield env.process(service.handle_message(envelope))

    for name in peers:
        env.process(node_loop(env, services[name], network.interface(name)))
    return env, network, services, decided, peers


@pytest.mark.parametrize("protocol,num,faulty", [("pbft", 4, 1), ("raft", 3, 1), ("kafka", 3, 1)])
class TestAllProtocols:
    def test_single_proposal_decided_everywhere(self, protocol, num, faulty):
        env, network, services, decided, peers = build_cluster(protocol, num, faulty)
        leader = services[peers[0]]

        def propose(env):
            decision = yield env.process(leader.propose({"batch": 1}))
            return decision

        process = env.process(propose(env))
        env.run(until=5.0)
        assert process.triggered and process.ok
        assert process.value.sequence == 1
        for name in peers:
            assert [d.sequence for d in decided[name]] == [1]
            assert decided[name][0].payload == {"batch": 1}

    def test_multiple_proposals_delivered_in_order(self, protocol, num, faulty):
        env, network, services, decided, peers = build_cluster(protocol, num, faulty)
        leader = services[peers[0]]

        def propose_many(env):
            for i in range(5):
                yield env.process(leader.propose({"batch": i}))

        env.process(propose_many(env))
        env.run(until=10.0)
        for name in peers:
            sequences = [d.sequence for d in decided[name]]
            payloads = [d.payload["batch"] for d in decided[name]]
            assert sequences == [1, 2, 3, 4, 5]
            assert payloads == [0, 1, 2, 3, 4]

    def test_non_leader_cannot_propose(self, protocol, num, faulty):
        env, network, services, decided, peers = build_cluster(protocol, num, faulty)
        follower = services[peers[1]]
        with pytest.raises(ProtocolError):
            # propose() validates leadership before yielding anything.
            next(iter(follower.propose({"batch": 1})))

    def test_decision_survives_f_crashed_followers(self, protocol, num, faulty):
        faults = FaultPlan()
        env, network, services, decided, peers = build_cluster(protocol, num, faulty, faults=faults)
        # Crash the last f follower(s); quorum must still be reachable.
        for name in peers[-faulty:]:
            faults.crash(name)
        leader = services[peers[0]]
        process = env.process(leader.propose({"batch": 1}))
        env.run(until=5.0)
        assert process.triggered and process.ok
        for name in peers[: num - faulty]:
            assert [d.sequence for d in decided[name]] == [1]


class TestQuorumSizes:
    def test_pbft_requires_3f_plus_1(self):
        env = Environment()
        network = Network(env)
        registry = KeyRegistry()
        peers = ["o-0", "o-1", "o-2"]
        registry.register("o-0")
        with pytest.raises(ProtocolError):
            PBFTOrdering(
                env=env,
                node_id="o-0",
                peers=peers,
                interface=network.register("o-0"),
                registry=registry,
                max_faulty=1,
            )

    def test_raft_requires_2f_plus_1(self):
        env = Environment()
        network = Network(env)
        registry = KeyRegistry()
        registry.register("o-0")
        with pytest.raises(ProtocolError):
            RaftOrdering(
                env=env,
                node_id="o-0",
                peers=["o-0", "o-1"],
                interface=network.register("o-0"),
                registry=registry,
                max_faulty=1,
            )

    def test_unknown_protocol_rejected(self):
        env = Environment()
        network = Network(env)
        registry = KeyRegistry()
        registry.register("o-0")
        with pytest.raises(ConfigurationError):
            make_ordering_service(
                "pow",
                env=env,
                node_id="o-0",
                peers=["o-0"],
                interface=network.register("o-0"),
                registry=registry,
            )


class TestPBFTByzantineBehaviour:
    def test_forged_preprepare_from_non_primary_is_ignored(self):
        env, network, services, decided, peers = build_cluster("pbft", 4, 1)
        byzantine = peers[3]
        # The Byzantine follower tries to pre-prepare its own value.
        services[byzantine].sign_and_multicast(
            "PBFT_PRE_PREPARE",
            {"view": 0, "seq": 1, "digest": "bogus", "payload": {"evil": True}},
        )
        env.run(until=2.0)
        for name in peers:
            assert decided[name] == []

    def test_pbft_stalls_without_quorum(self):
        faults = FaultPlan()
        env, network, services, decided, peers = build_cluster("pbft", 4, 1, faults=faults)
        # Crash 2f followers: only 2 of 4 orderers remain, below the commit quorum.
        faults.crash(peers[2])
        faults.crash(peers[3])
        leader = services[peers[0]]
        process = env.process(leader.propose({"batch": 1}))
        env.run(until=5.0)
        assert not process.triggered
        assert decided[peers[1]] == []


class TestKafkaSpecifics:
    def test_broker_delay_contributes_to_latency(self):
        env, network, services, decided, peers = build_cluster("kafka", 3, 0)
        leader = services[peers[0]]
        process = env.process(leader.propose({"batch": 1}))
        env.run(until=5.0)
        assert process.value.decided_at >= KafkaOrdering(
            env=Environment(),
            node_id="x",
            peers=["x"],
            interface=Network(Environment()).register("x"),
            registry=KeyRegistry(),
        ).broker_delay
