"""Tests for the smart contracts and the contract registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ContractError
from repro.contracts import (
    AccountingContract,
    ContractRegistry,
    KeyValueContract,
    SupplyChainContract,
)
from repro.contracts.accounting import Transfer, account_key
from repro.core.execution import ExecutionEngine
from repro.core.dependency_graph import build_dependency_graph


class TestAccountingContract:
    def setup_method(self):
        self.contract = AccountingContract("app-0")
        self.state = AccountingContract.initial_state(
            [("1001", 100.0, "alice"), ("1002", 50.0, "bob"), ("1003", 0.0, "carol")]
        )

    def _transfer(self, tx_id, source, destination, amount, client="alice"):
        return AccountingContract.make_transfer_transaction(
            tx_id=tx_id,
            application="app-0",
            client=client,
            transfers=[Transfer(source=source, destination=destination, amount=amount)],
        )

    def test_paper_example_read_write_sets(self):
        tx = self._transfer("T", "1001", "1002", 10.0)
        assert tx.read_set == {account_key("1001")}
        assert tx.write_set == {account_key("1001"), account_key("1002")}

    def test_valid_transfer_moves_funds(self):
        tx = self._transfer("T", "1001", "1002", 30.0)
        result = self.contract.execute(tx, self.state)
        assert not result.is_abort
        assert result.updates[account_key("1001")]["balance"] == 70.0
        assert result.updates[account_key("1002")]["balance"] == 80.0

    def test_overdraft_aborts(self):
        tx = self._transfer("T", "1001", "1002", 1000.0)
        assert self.contract.execute(tx, self.state).is_abort

    def test_wrong_owner_aborts(self):
        tx = self._transfer("T", "1001", "1002", 10.0, client="mallory")
        assert self.contract.execute(tx, self.state).is_abort

    def test_unknown_account_aborts(self):
        tx = self._transfer("T", "9999", "1002", 10.0)
        assert self.contract.execute(tx, self.state).is_abort

    def test_ownership_check_can_be_disabled(self):
        relaxed = AccountingContract("app-0", enforce_ownership=False)
        tx = self._transfer("T", "1001", "1002", 10.0, client="mallory")
        assert not relaxed.execute(tx, self.state).is_abort

    def test_multi_leg_transfer(self):
        tx = AccountingContract.make_transfer_transaction(
            tx_id="T",
            application="app-0",
            client="alice",
            transfers=[
                Transfer(source="1001", destination="1002", amount=10.0),
                Transfer(source="1001", destination="1003", amount=5.0),
            ],
        )
        result = AccountingContract("app-0").execute(tx, self.state)
        assert result.updates[account_key("1001")]["balance"] == 85.0
        assert result.updates[account_key("1003")]["balance"] == 5.0

    def test_empty_transfer_list_rejected(self):
        with pytest.raises(ContractError):
            AccountingContract.make_transfer_transaction(
                tx_id="T", application="app-0", client="alice", transfers=[]
            )

    def test_balance_helpers(self):
        assert AccountingContract.balance_of(self.state, "1001") == 100.0
        assert AccountingContract.balance_of(self.state, "missing") == 0.0
        assert AccountingContract.total_balance(self.state) == 150.0

    def test_total_balance_conserved_by_block_execution(self):
        txs = [
            self._transfer("T1", "1001", "1002", 10.0),
            self._transfer("T2", "1001", "1003", 20.0),
            AccountingContract.make_transfer_transaction(
                tx_id="T3", application="app-0", client="bob",
                transfers=[Transfer(source="1002", destination="1003", amount=5.0)],
            ),
        ]
        txs = [tx.with_timestamp(i + 1) for i, tx in enumerate(txs)]
        engine = ExecutionEngine(lambda tx, s: AccountingContract("app-0").execute(tx, s), dict(self.state))
        engine.execute_with_graph(build_dependency_graph(txs))
        assert AccountingContract.total_balance(engine.state) == pytest.approx(150.0)

    @given(st.floats(min_value=0.01, max_value=99.9))
    @settings(max_examples=30, deadline=None)
    def test_transfer_conserves_total_property(self, amount):
        tx = self._transfer("T", "1001", "1002", amount)
        result = AccountingContract("app-0").execute(tx, self.state)
        merged = dict(self.state)
        merged.update(result.updates)
        assert AccountingContract.total_balance(merged) == pytest.approx(150.0)


class TestKeyValueContract:
    def test_literal_writes(self):
        contract = KeyValueContract("app-kv")
        tx = KeyValueContract.make_transaction("t", "app-kv", reads=[], writes={"x": 42})
        result = contract.execute(tx, {})
        assert result.updates == {"x": 42}

    def test_derived_writes_depend_on_reads(self):
        contract = KeyValueContract("app-kv")
        tx = KeyValueContract.make_transaction("t", "app-kv", reads=["a", "b"], writes={"sum": None})
        result = contract.execute(tx, {"a": 2, "b": 3})
        assert result.updates == {"sum": 6}
        different = contract.execute(tx, {"a": 10, "b": 3})
        assert different.updates == {"sum": 14}


class TestSupplyChainContract:
    def setup_method(self):
        self.contract = SupplyChainContract("app-sc")

    def test_register_ship_inspect_flow(self):
        state = {}
        register = SupplyChainContract.make_register("t1", "app-sc", "asset-1", owner="factory")
        result = self.contract.execute(register, state)
        state.update(result.updates)
        ship = SupplyChainContract.make_ship("t2", "app-sc", "asset-1", sender="factory", recipient="dc")
        result = self.contract.execute(ship, state)
        state.update(result.updates)
        inspect = SupplyChainContract.make_inspect("t3", "app-sc", "asset-1", inspector="auditor", verdict="ok")
        result = self.contract.execute(inspect, state)
        state.update(result.updates)
        record = state["asset/asset-1"]
        assert record["owner"] == "dc"
        assert record["status"] == "ok"
        assert len(record["history"]) == 3

    def test_double_register_aborts(self):
        state = {}
        first = SupplyChainContract.make_register("t1", "app-sc", "a", owner="x")
        state.update(self.contract.execute(first, state).updates)
        second = SupplyChainContract.make_register("t2", "app-sc", "a", owner="y")
        assert self.contract.execute(second, state).is_abort

    def test_ship_by_non_owner_aborts(self):
        state = {}
        state.update(self.contract.execute(
            SupplyChainContract.make_register("t1", "app-sc", "a", owner="factory"), state).updates)
        theft = SupplyChainContract.make_ship("t2", "app-sc", "a", sender="thief", recipient="fence")
        assert self.contract.execute(theft, state).is_abort

    def test_ship_unknown_asset_aborts(self):
        ship = SupplyChainContract.make_ship("t", "app-sc", "ghost", sender="x", recipient="y")
        assert self.contract.execute(ship, {}).is_abort


class TestContractRegistry:
    def test_install_and_lookup(self):
        registry = ContractRegistry()
        registry.install(AccountingContract("app-0"), agents=["e0", "e1"])
        registry.install(KeyValueContract("app-1"), agents=["e2"])
        assert set(registry.applications()) == {"app-0", "app-1"}
        assert registry.agents_of("app-0") == ["e0", "e1"]
        assert registry.is_agent("e0", "app-0")
        assert not registry.is_agent("e0", "app-1")
        assert registry.applications_of("e2") == ["app-1"]

    def test_install_requires_agents(self):
        registry = ContractRegistry()
        with pytest.raises(ContractError):
            registry.install(AccountingContract("app-0"), agents=[])

    def test_unknown_application_rejected(self):
        registry = ContractRegistry()
        with pytest.raises(ContractError):
            registry.contract("ghost")
        with pytest.raises(ContractError):
            registry.agents_of("ghost")

    def test_execute_stamps_executor(self):
        registry = ContractRegistry()
        registry.install(KeyValueContract("app-kv"), agents=["e0"])
        tx = KeyValueContract.make_transaction("t", "app-kv", reads=[], writes={"x": 1})
        result = registry.execute(tx, {}, executed_by="e0")
        assert result.executed_by == "e0"
