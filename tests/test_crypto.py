"""Unit tests for the crypto substrate: hashing, signatures, Merkle trees."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SignatureError
from repro.crypto.hashing import GENESIS_HASH, combined_hash, content_hash, hash_chain, hash_pair
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import KeyPair, KeyRegistry, SignedMessage, sign, verify


class TestContentHash:
    def test_deterministic(self):
        value = {"b": 2, "a": [1, 2, {"x": None}]}
        assert content_hash(value) == content_hash(value)

    def test_dict_order_independent(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_different_values_different_hashes(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_type_distinction(self):
        # The canonical encoding distinguishes types even when reprs collide.
        assert content_hash(1) != content_hash("1")
        assert content_hash(True) != content_hash(1)

    def test_nested_sequences(self):
        assert content_hash([1, [2, 3]]) != content_hash([[1, 2], 3])

    def test_sets_are_order_independent(self):
        assert content_hash({"x", "y", "z"}) == content_hash({"z", "y", "x"})

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            content_hash(object())

    def test_canonical_tuple_protocol(self):
        class Thing:
            def canonical_tuple(self):
                return ("thing", 42)

        assert content_hash(Thing()) == content_hash(Thing())

    @given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=8))
    def test_hash_is_stable_under_reinsertion(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert content_hash(mapping) == content_hash(reordered)


class TestHashChain:
    def test_chain_depends_on_previous(self):
        first = hash_chain(GENESIS_HASH, "block-1")
        second = hash_chain(first, "block-2")
        assert first != second
        assert hash_chain(GENESIS_HASH, "block-2") != second

    def test_hash_pair_is_order_sensitive(self):
        assert hash_pair("ab", "cd") != hash_pair("cd", "ab")

    def test_combined_hash_matches_manual_chaining(self):
        values = ["a", "b", "c"]
        manual = GENESIS_HASH
        for value in values:
            manual = hash_chain(manual, value)
        assert combined_hash(values) == manual


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        key = KeyPair.generate("node-1", seed="s")
        signature = sign({"msg": 1}, key)
        assert verify({"msg": 1}, signature, key)

    def test_verification_fails_on_tampered_payload(self):
        key = KeyPair.generate("node-1")
        signature = sign({"msg": 1}, key)
        assert not verify({"msg": 2}, signature, key)

    def test_verification_fails_with_wrong_key(self):
        key1 = KeyPair.generate("node-1")
        key2 = KeyPair.generate("node-2")
        signature = sign("payload", key1)
        assert not verify("payload", signature, key2)

    def test_registry_sign_and_verify(self):
        registry = KeyRegistry(seed="t")
        registry.register("orderer-0")
        message = registry.sign({"seq": 1}, "orderer-0")
        assert registry.verify(message)

    def test_registry_rejects_forged_signer(self):
        registry = KeyRegistry(seed="t")
        registry.register("honest")
        registry.register("byzantine")
        # The Byzantine node signs with its own key but claims to be "honest".
        forged = registry.sign({"seq": 1}, "byzantine")
        claim = SignedMessage(payload=forged.payload, signer="honest", signature=forged.signature)
        assert not registry.verify(claim)

    def test_registry_unknown_signer(self):
        registry = KeyRegistry()
        message = SignedMessage(payload="x", signer="ghost", signature="00")
        assert not registry.verify(message)
        with pytest.raises(SignatureError):
            registry.key_for("ghost")

    def test_registry_check_raises(self):
        registry = KeyRegistry()
        registry.register("a")
        good = registry.sign("payload", "a")
        registry.check(good)
        bad = SignedMessage(payload="other", signer="a", signature=good.signature)
        with pytest.raises(SignatureError):
            registry.check(bad)

    def test_deterministic_keys_with_same_seed(self):
        assert KeyPair.generate("n", seed="x") == KeyPair.generate("n", seed="x")
        assert KeyPair.generate("n", seed="x") != KeyPair.generate("n", seed="y")


class TestTrustedChannels:
    def test_registry_starts_untrusted(self):
        registry = KeyRegistry(seed="s")
        assert registry.trusted is False
        registry.trust_channels()
        assert registry.trusted is True

    def test_trusted_message_skips_hashing_but_stays_verifiable_shape(self):
        from repro.network.message import TRUSTED_SIGNATURE, build_trusted

        message = build_trusted("REQUEST", {"n": 1})
        # Non-empty placeholder: the ``if not message.signature`` guard on
        # every verify path still rejects explicitly unsigned messages.
        assert message.signature == TRUSTED_SIGNATURE
        # The hashes were not computed eagerly but stay lazily available.
        assert message._body_hash is None
        assert message.body_hash()
        assert message.unsigned_hash()

    def test_untrusted_registry_rejects_trusted_placeholder(self):
        """A trusted-channel message is NOT verifiable under real crypto —
        the trust switch must be deployment-wide, never per message."""
        from repro.network.message import build_trusted

        registry = KeyRegistry(seed="s")
        registry.register("a")
        message = build_trusted("REQUEST", {"n": 1})
        assert not registry.verify_hash(message.unsigned_hash(), "a", message.signature)


class TestMerkleTree:
    def test_empty_tree_has_genesis_root(self):
        assert MerkleTree([]).root == GENESIS_HASH

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree(["tx-1"])
        assert tree.root == content_hash("tx-1")

    def test_root_changes_with_leaves(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["a", "c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_proofs_verify_for_every_leaf(self, size):
        leaves = [f"tx-{i}" for i in range(size)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert MerkleTree.verify_proof(leaf, proof, tree.root)

    def test_proof_fails_for_wrong_leaf(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        proof = tree.proof(1)
        assert not MerkleTree.verify_proof("tampered", proof, tree.root)

    def test_proof_index_out_of_range(self):
        with pytest.raises(IndexError):
            MerkleTree(["a"]).proof(3)

    @given(st.lists(st.text(max_size=6), min_size=1, max_size=20))
    def test_every_proof_verifies_property(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert MerkleTree.verify_proof(leaf, tree.proof(index), tree.root)

    def test_from_leaf_hashes_matches_hashing_the_leaves(self):
        leaves = [f"tx-{i}" for i in range(7)]
        hashed = MerkleTree(leaves)
        precomputed = MerkleTree.from_leaf_hashes([content_hash(leaf) for leaf in leaves])
        assert precomputed.root == hashed.root
        for index, leaf in enumerate(leaves):
            assert precomputed.proof(index) == hashed.proof(index)
            assert MerkleTree.verify_proof_hash(
                content_hash(leaf), precomputed.proof(index), precomputed.root
            )

    def test_from_leaf_hashes_empty_is_genesis(self):
        assert MerkleTree.from_leaf_hashes([]).root == GENESIS_HASH

    def test_verify_proof_hash_rejects_wrong_hash(self):
        tree = MerkleTree.from_leaf_hashes([content_hash(x) for x in "abcd"])
        assert not MerkleTree.verify_proof_hash(content_hash("z"), tree.proof(1), tree.root)


class TestCanonicalBytesMemoisation:
    def test_transaction_bytes_are_cached_and_consistent(self):
        from repro.core.transaction import ReadWriteSet, Transaction
        from repro.crypto.hashing import canonical_bytes

        tx = Transaction(
            tx_id="t1",
            application="app-0",
            rw_set=ReadWriteSet.build(reads=["a"], writes=["b"]),
            timestamp=1,
            payload={"amount": 5},
        )
        first = tx.canonical_bytes()
        assert tx.canonical_bytes() is first  # memoised
        # The protocol short-circuit must produce the same encoding the
        # canonical_tuple() path would, so digests agree with content_hash.
        assert canonical_bytes(tx) == first
        assert tx.digest() == content_hash(tx)

    def test_equal_transactions_share_encoding_content(self):
        from repro.core.transaction import ReadWriteSet, Transaction

        def make():
            return Transaction(
                tx_id="t1",
                application="app-0",
                rw_set=ReadWriteSet.build(reads=["a"]),
                timestamp=3,
            )

        assert make().canonical_bytes() == make().canonical_bytes()
        assert make().digest() == make().digest()
