"""Tests for dependency-graph construction — the paper's core data structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DependencyGraphError
from repro.core.dependency_graph import (
    ConflictType,
    DependencyEdge,
    DependencyGraph,
    GraphConstruction,
    GraphMode,
    StreamingGraphBuilder,
    build_dependency_graph,
    build_operation_graph,
    conflicts,
    contention_statistics,
    has_ordering_dependency,
)
from tests.conftest import make_tx


def paper_example_block():
    """The block of Figure 2: [T1, T5, T4, T3, T2] with the paper's conflicts.

    T1 writes b; T4 reads b (T1 ~> T4).  T5 writes d and reads e; T2 writes d
    (T5 ~> T2); T3 writes e (T5 ~> T3).
    """
    t1 = make_tx("T1", reads=["a"], writes=["b"], application="app-1", timestamp=1)
    t5 = make_tx("T5", reads=["e"], writes=["d"], application="app-2", timestamp=2)
    t4 = make_tx("T4", reads=["b"], writes=["f"], application="app-2", timestamp=3)
    t3 = make_tx("T3", reads=["g"], writes=["e"], application="app-1", timestamp=4)
    t2 = make_tx("T2", reads=["h"], writes=["d"], application="app-2", timestamp=5)
    return [t1, t5, t4, t3, t2]


class TestConflictDetection:
    def test_read_write_conflict(self):
        earlier = make_tx("a", reads=["x"], timestamp=1)
        later = make_tx("b", writes=["x"], timestamp=2)
        assert conflicts(earlier, later) == [ConflictType.READ_WRITE]
        assert has_ordering_dependency(earlier, later)

    def test_write_read_conflict(self):
        earlier = make_tx("a", writes=["x"], timestamp=1)
        later = make_tx("b", reads=["x"], timestamp=2)
        assert ConflictType.WRITE_READ in conflicts(earlier, later)

    def test_write_write_conflict(self):
        earlier = make_tx("a", writes=["x"], timestamp=1)
        later = make_tx("b", writes=["x"], timestamp=2)
        assert ConflictType.WRITE_WRITE in conflicts(earlier, later)

    def test_read_read_is_not_a_conflict(self):
        earlier = make_tx("a", reads=["x"], timestamp=1)
        later = make_tx("b", reads=["x"], timestamp=2)
        assert conflicts(earlier, later) == []
        assert not has_ordering_dependency(earlier, later)

    def test_no_dependency_against_timestamp_order(self):
        earlier = make_tx("a", writes=["x"], timestamp=2)
        later = make_tx("b", writes=["x"], timestamp=1)
        assert not has_ordering_dependency(earlier, later)

    def test_multi_version_only_write_read_orders(self):
        w = make_tx("w", writes=["x"], timestamp=1)
        r = make_tx("r", reads=["x"], timestamp=2)
        w2 = make_tx("w2", writes=["x"], timestamp=2)
        assert has_ordering_dependency(w, r, GraphMode.MULTI_VERSION)
        assert not has_ordering_dependency(w, w2, GraphMode.MULTI_VERSION)
        r1 = make_tx("r1", reads=["x"], timestamp=1)
        assert not has_ordering_dependency(r1, w2, GraphMode.MULTI_VERSION)


class TestPaperExample:
    def test_figure2_edges(self):
        graph = build_dependency_graph(paper_example_block())
        edge_pairs = {(e.source, e.target) for e in graph.edges()}
        assert edge_pairs == {("T1", "T4"), ("T5", "T2"), ("T5", "T3")}

    def test_figure2_concurrency(self):
        graph = build_dependency_graph(paper_example_block())
        # T1 and T2 are not connected and can be processed concurrently.
        assert "T2" not in graph.successors("T1")
        assert "T1" not in graph.predecessors("T2")
        assert graph.predecessors("T4") == {"T1"}
        assert graph.successors("T5") == {"T2", "T3"}
        assert set(graph.roots()) == {"T1", "T5"}

    def test_figure2_cross_application_edges(self):
        graph = build_dependency_graph(paper_example_block())
        cross = {(e.source, e.target) for e in graph.cross_application_edges()}
        assert ("T1", "T4") in cross  # app-1 -> app-2
        assert ("T5", "T3") in cross  # app-2 -> app-1
        assert graph.has_cross_application_dependency()


class TestGraphStructure:
    def test_no_contention_has_no_edges(self):
        txs = [make_tx(f"t{i}", reads=[f"r{i}"], writes=[f"w{i}"], timestamp=i + 1) for i in range(10)]
        graph = build_dependency_graph(txs)
        assert graph.edge_count == 0
        assert graph.critical_path_length() == 1
        assert not graph.is_chain()
        assert len(graph.components()) == 10
        assert graph.degree_of_contention() == 0.0

    def test_full_contention_is_a_chain(self):
        txs = [make_tx(f"t{i}", reads=["hot"], writes=["hot"], timestamp=i + 1) for i in range(8)]
        graph = build_dependency_graph(txs)
        assert graph.is_chain()
        assert graph.critical_path_length() == 8
        assert graph.degree_of_contention() == 1.0

    def test_partial_contention_profile(self):
        hot = [make_tx(f"h{i}", writes=["hot"], timestamp=i + 1) for i in range(3)]
        cold = [make_tx(f"c{i}", writes=[f"cold{i}"], timestamp=10 + i) for i in range(3)]
        graph = build_dependency_graph(hot + cold)
        assert graph.critical_path_length() == 3
        profile = graph.parallelism_profile()
        assert profile[0] == 4  # the three cold transactions plus the first hot one
        assert sum(profile) == 6

    def test_topological_order_respects_edges(self):
        graph = build_dependency_graph(paper_example_block())
        order = graph.topological_order()
        assert order.index("T1") < order.index("T4")
        assert order.index("T5") < order.index("T2")
        assert order.index("T5") < order.index("T3")

    def test_subgraph_for_application(self):
        graph = build_dependency_graph(paper_example_block())
        sub = graph.subgraph_for_application("app-2")
        assert set(sub.transaction_ids) == {"T5", "T4", "T2"}
        assert {(e.source, e.target) for e in sub.edges()} == {("T5", "T2")}

    def test_single_transaction_is_trivially_a_chain(self):
        graph = build_dependency_graph([make_tx("only", writes=["x"], timestamp=1)])
        assert graph.is_chain()
        assert graph.critical_path_length() == 1

    def test_contention_statistics(self):
        stats = contention_statistics(build_dependency_graph(paper_example_block()))
        assert stats["transactions"] == 5.0
        assert stats["edges"] == 3.0
        assert stats["cross_application_edges"] == 2.0


class TestGraphEdgeCases:
    def test_empty_block(self):
        graph = build_dependency_graph([])
        assert len(graph) == 0
        assert graph.edge_count == 0
        assert graph.critical_path_length() == 0
        assert graph.topological_order() == []
        assert graph.components() == []
        assert graph.parallelism_profile() == []
        assert graph.roots() == []
        assert graph.degree_of_contention() == 0.0
        assert graph.is_chain()

    def test_single_transaction(self):
        graph = build_dependency_graph([make_tx("only", reads=["x"], writes=["x"], timestamp=1)])
        assert graph.roots() == ["only"]
        assert graph.predecessors("only") == set()
        assert graph.successors("only") == set()
        assert graph.components() == [{"only"}]
        assert graph.parallelism_profile() == [1]

    def test_figure6d_full_contention_chain(self):
        """Figure 6(d): 100% contention makes the whole block one chain."""
        n = 64
        txs = [make_tx(f"t{i}", reads=["hot"], writes=["hot"], timestamp=i + 1) for i in range(n)]
        graph = build_dependency_graph(txs)
        assert graph.is_chain()
        assert graph.critical_path_length() == n
        # Every ordered pair conflicts, so the chain carries all transitive edges.
        assert graph.edge_count == n * (n - 1) // 2
        assert graph.parallelism_profile() == [1] * n
        assert len(graph.components()) == 1

    def test_multi_version_prunes_ww_and_rw_edges(self):
        txs = [
            make_tx("w1", writes=["x"], timestamp=1),
            make_tx("r1", reads=["x"], timestamp=2),
            make_tx("w2", writes=["x"], timestamp=3),
            make_tx("r2", reads=["x"], timestamp=4),
        ]
        single = build_dependency_graph(txs, mode=GraphMode.SINGLE_VERSION)
        multi = build_dependency_graph(txs, mode=GraphMode.MULTI_VERSION)
        single_pairs = {(e.source, e.target) for e in single.edges()}
        multi_pairs = {(e.source, e.target) for e in multi.edges()}
        # Single-version orders every conflicting pair; multi-version keeps
        # only write-then-read (the reader needs the writer's version).
        assert ("w1", "w2") in single_pairs and ("r1", "w2") in single_pairs
        assert multi_pairs == {("w1", "r1"), ("w1", "r2"), ("w2", "r2")}
        assert all(e.kinds == (ConflictType.WRITE_READ,) for e in multi.edges())

    def test_edge_kinds_accumulate(self):
        txs = [
            make_tx("a", reads=["x"], writes=["x"], timestamp=1),
            make_tx("b", reads=["x"], writes=["x"], timestamp=2),
        ]
        graph = build_dependency_graph(txs)
        (edge,) = graph.edges()
        assert set(edge.kinds) == {
            ConflictType.READ_WRITE,
            ConflictType.WRITE_READ,
            ConflictType.WRITE_WRITE,
        }


class TestStreamingGraphBuilder:
    def test_incremental_equals_batch(self):
        txs = paper_example_block()
        builder = StreamingGraphBuilder()
        for tx in sorted(txs, key=lambda t: t.timestamp):
            builder.add(tx)
        streamed = builder.graph()
        batch = build_dependency_graph(txs)
        assert streamed.canonical_tuple() == batch.canonical_tuple()

    def test_add_returns_new_dependency_count(self):
        builder = StreamingGraphBuilder()
        assert builder.add(make_tx("a", writes=["x"], timestamp=1)) == 0
        assert builder.add(make_tx("b", reads=["x"], timestamp=2)) == 1
        assert builder.predecessors_of("b") == {"a"}
        assert builder.edge_count == 1
        (edge,) = builder.graph().edges()
        assert (edge.source, edge.target) == ("a", "b")
        assert edge.kinds == (ConflictType.WRITE_READ,)

    def test_snapshot_does_not_invalidate_builder(self):
        builder = StreamingGraphBuilder()
        builder.add(make_tx("a", writes=["x"], timestamp=1))
        first = builder.graph()
        builder.add(make_tx("b", writes=["x"], timestamp=2))
        second = builder.graph()
        assert len(first) == 1 and first.edge_count == 0
        assert len(second) == 2 and second.edge_count == 1

    def test_reset_forgets_record_indices(self):
        builder = StreamingGraphBuilder()
        builder.add(make_tx("a", writes=["x"], timestamp=1))
        builder.reset()
        assert len(builder) == 0
        # "a"'s write of x must not leak an edge into the next block.
        assert builder.add(make_tx("b", reads=["x"], timestamp=1)) == 0

    def test_rejects_duplicate_ids_and_stale_timestamps(self):
        builder = StreamingGraphBuilder()
        builder.add(make_tx("a", writes=["x"], timestamp=2))
        with pytest.raises(DependencyGraphError):
            builder.add(make_tx("a", writes=["y"], timestamp=3))
        with pytest.raises(DependencyGraphError):
            builder.add(make_tx("b", writes=["y"], timestamp=2))

    def test_multi_version_mode(self):
        builder = StreamingGraphBuilder(mode=GraphMode.MULTI_VERSION)
        builder.add(make_tx("w1", writes=["x"], timestamp=1))
        assert builder.add(make_tx("w2", writes=["x"], timestamp=2)) == 0
        assert builder.add(make_tx("r", reads=["x"], timestamp=3)) == 2
        assert builder.predecessors_of("r") == {"w1", "w2"}

    def test_take_graph_resets_builder(self):
        builder = StreamingGraphBuilder()
        builder.add(make_tx("a", writes=["x"], timestamp=1))
        builder.add(make_tx("b", reads=["x"], timestamp=2))
        graph = builder.take_graph()
        assert len(graph) == 2 and graph.edge_count == 1
        assert len(builder) == 0 and builder.edge_count == 0
        # The next block starts clean.
        assert builder.add(make_tx("c", reads=["x"], timestamp=1)) == 0


class TestSparseConstruction:
    """Frontier-chain construction: transitively redundant edges never exist.

    Per key the sparse builder keeps the last writer and the readers since
    that write; a new writer depends on the reader frontier (or the last
    writer when no reads intervened), a new reader depends on the last
    writer.  Waves, reachability and committed state are identical to the
    all-pairs graph — pinned generatively in ``test_graph_properties.py``;
    these tests pin the exact edge sets on hand-built shapes.
    """

    def _sparse(self, txs, mode=GraphMode.SINGLE_VERSION):
        return build_dependency_graph(txs, mode=mode, construction=GraphConstruction.SPARSE)

    def test_writer_chain_keeps_only_adjacent_edges(self):
        txs = [make_tx(f"w{i}", writes=["x"], timestamp=i + 1) for i in range(4)]
        sparse = self._sparse(txs)
        assert set(sparse.dag.edges()) == {(0, 1), (1, 2), (2, 3)}
        all_pairs = build_dependency_graph(txs)
        assert all_pairs.edge_count == 6  # every ordered pair
        assert sparse.critical_path_length() == all_pairs.critical_path_length() == 4

    def test_reader_diamond(self):
        txs = [
            make_tx("w0", writes=["x"], timestamp=1),
            make_tx("r1", reads=["x"], timestamp=2),
            make_tx("r2", reads=["x"], timestamp=3),
            make_tx("w3", writes=["x"], timestamp=4),
        ]
        sparse = self._sparse(txs)
        # w3 depends on the reader frontier {r1, r2}, not on w0 directly —
        # w0 ~> w3 is transitively implied through either reader.
        assert set(sparse.dag.edges()) == {(0, 1), (0, 2), (1, 3), (2, 3)}
        assert build_dependency_graph(txs).edge_count == 5
        assert sparse.dag.longest_path_depths() == [0, 1, 1, 2]

    def test_write_after_frontier_clears_readers(self):
        txs = [
            make_tx("r0", reads=["x"], timestamp=1),
            make_tx("w1", writes=["x"], timestamp=2),
            make_tx("r2", reads=["x"], timestamp=3),
        ]
        sparse = self._sparse(txs)
        # r2 reads the version w1 wrote; its only edge is from w1 (the r0
        # frontier was consumed by w1's write).
        assert set(sparse.dag.edges()) == {(0, 1), (1, 2)}

    def test_read_and_write_of_same_key_takes_write_rule_once(self):
        txs = [
            make_tx("w0", writes=["x"], timestamp=1),
            make_tx("rw1", reads=["x"], writes=["x"], timestamp=2),
        ]
        sparse = self._sparse(txs)
        # One edge, no self-loop, no duplicate from the read rule.
        assert set(sparse.dag.edges()) == {(0, 1)}
        assert sparse.edge_count == 1

    def test_multi_version_mode_is_never_sparsified(self):
        txs = [
            make_tx("w0", writes=["x"], timestamp=1),
            make_tx("w1", writes=["x"], timestamp=2),
            make_tx("r2", reads=["x"], timestamp=3),
        ]
        sparse = self._sparse(txs, mode=GraphMode.MULTI_VERSION)
        dense = build_dependency_graph(txs, mode=GraphMode.MULTI_VERSION)
        # Only w->r edges exist under MVCC; writers are mutually unreachable,
        # so no edge is transitively redundant and sparse == all-pairs.
        assert set(sparse.dag.edges()) == set(dense.dag.edges()) == {(0, 2), (1, 2)}

    def test_streaming_sparse_reset_clears_frontiers(self):
        builder = StreamingGraphBuilder(construction=GraphConstruction.SPARSE)
        builder.add(make_tx("w", writes=["x"], timestamp=1))
        builder.add(make_tx("r", reads=["x"], timestamp=2))
        builder.reset()
        # Neither the last writer nor the reader frontier may leak into the
        # next block.
        assert builder.add(make_tx("r2", reads=["x"], timestamp=1)) == 0
        assert builder.add(make_tx("w2", writes=["x"], timestamp=2)) == 1  # from r2 only

    def test_construction_is_carried_by_graph_and_subgraphs(self):
        txs = paper_example_block()
        sparse = self._sparse(txs)
        assert sparse.construction is GraphConstruction.SPARSE
        sub = sparse.subgraph_for_application("app-2")
        assert sub.construction is GraphConstruction.SPARSE
        assert build_dependency_graph(txs).construction is GraphConstruction.ALL_PAIRS

    def test_execution_on_sparse_graph_matches_all_pairs(self):
        from repro.core.execution import ExecutionEngine
        from repro.core.transaction import TransactionResult

        txs = [
            make_tx(f"t{i}", reads=[f"k{i % 3}"], writes=[f"k{(i + 1) % 3}"], timestamp=i + 1)
            for i in range(12)
        ]

        def runner(tx, state):
            updates = {k: str(state.get(k, 0)) + tx.tx_id for k in tx.write_set}
            return TransactionResult(tx_id=tx.tx_id, application=tx.application, updates=updates)

        sparse_state, dense_state = {}, {}
        sparse_results = ExecutionEngine(runner, sparse_state).execute_with_graph(self._sparse(txs))
        dense_results = ExecutionEngine(runner, dense_state).execute_with_graph(
            build_dependency_graph(txs)
        )
        assert sparse_state == dense_state
        assert sparse_results == dense_results


class TestNetworkxEquivalence:
    """The native adjacency core must match the seed's networkx results."""

    @staticmethod
    def _random_blocks(count=25, max_size=40, keys=8):
        import random

        rng = random.Random(1234)
        blocks = []
        for b in range(count):
            size = rng.randint(0, max_size)
            txs = []
            for i in range(size):
                reads = frozenset(
                    f"k{rng.randrange(keys)}" for _ in range(rng.randint(0, 3))
                )
                writes = frozenset(
                    f"k{rng.randrange(keys)}" for _ in range(rng.randint(0, 3))
                )
                txs.append(
                    make_tx(
                        f"b{b}t{i}",
                        reads=reads,
                        writes=writes,
                        application=f"app-{rng.randrange(3)}",
                        timestamp=i + 1,
                    )
                )
            blocks.append(txs)
        return blocks

    def test_matches_networkx_on_randomized_blocks(self):
        nx = pytest.importorskip("networkx")
        for txs in self._random_blocks():
            for mode in (GraphMode.SINGLE_VERSION, GraphMode.MULTI_VERSION):
                graph = build_dependency_graph(txs, mode=mode)
                reference = nx.DiGraph()
                reference.add_nodes_from(tx.tx_id for tx in txs)
                for i, earlier in enumerate(txs):
                    for later in txs[i + 1 :]:
                        if has_ordering_dependency(earlier, later, mode):
                            reference.add_edge(earlier.tx_id, later.tx_id)
                assert {(e.source, e.target) for e in graph.edges()} == set(
                    reference.edges()
                )
                assert graph.critical_path_length() == (
                    nx.dag_longest_path_length(reference) + 1 if txs else 0
                )
                assert sorted(map(sorted, graph.components())) == sorted(
                    sorted(c) for c in nx.weakly_connected_components(reference)
                )
                expected_order = list(
                    nx.lexicographical_topological_sort(
                        reference, key=lambda t, _ts={tx.tx_id: tx.timestamp for tx in txs}: _ts[t]
                    )
                )
                assert graph.topological_order() == expected_order

    def test_to_networkx_debug_export(self):
        nx = pytest.importorskip("networkx")
        graph = build_dependency_graph(paper_example_block())
        exported = graph.to_networkx()
        assert isinstance(exported, nx.DiGraph)
        assert set(exported.nodes()) == set(graph.transaction_ids)
        assert {(u, v) for u, v in exported.edges()} == {
            (e.source, e.target) for e in graph.edges()
        }
        assert exported.edges["T1", "T4"]["kinds"] == (ConflictType.WRITE_READ,)


class TestGraphValidation:
    def test_duplicate_transaction_ids_rejected(self):
        txs = [make_tx("dup", timestamp=1), make_tx("dup", timestamp=2)]
        with pytest.raises(DependencyGraphError):
            DependencyGraph(txs, edges=[])

    def test_edge_against_timestamp_order_rejected(self):
        txs = [make_tx("a", timestamp=1), make_tx("b", timestamp=2)]
        bad_edge = DependencyEdge(source="b", target="a", kinds=(ConflictType.WRITE_WRITE,))
        with pytest.raises(DependencyGraphError):
            DependencyGraph(txs, edges=[bad_edge])

    def test_edge_with_unknown_transaction_rejected(self):
        txs = [make_tx("a", timestamp=1)]
        bad_edge = DependencyEdge(source="a", target="ghost", kinds=(ConflictType.WRITE_WRITE,))
        with pytest.raises(DependencyGraphError):
            DependencyGraph(txs, edges=[bad_edge])

    def test_unknown_lookup_rejected(self):
        graph = build_dependency_graph([make_tx("a", timestamp=1)])
        with pytest.raises(DependencyGraphError):
            graph.predecessors("ghost")

    def test_duplicate_timestamps_rejected(self):
        txs = [make_tx("a", writes=["x"], timestamp=1), make_tx("b", writes=["x"], timestamp=1)]
        with pytest.raises(DependencyGraphError):
            build_dependency_graph(txs)


class TestOperationGraph:
    def test_operation_graph_splits_transactions(self):
        txs = [
            make_tx("a", reads=["x"], writes=["y"], timestamp=1),
            make_tx("b", reads=["y"], writes=["z"], timestamp=2),
        ]
        graph = build_operation_graph(txs)
        assert graph.number_of_nodes() == 4
        # a's write of y must precede b's read of y.
        assert graph.has_edge("a:write:y", "b:read:y")

    def test_reads_do_not_conflict_at_operation_level(self):
        txs = [
            make_tx("a", reads=["x"], timestamp=1),
            make_tx("b", reads=["x"], timestamp=2),
        ]
        graph = build_operation_graph(txs)
        assert graph.number_of_edges() == 0

    def test_same_transaction_operations_are_not_ordered(self):
        txs = [make_tx("a", reads=["x"], writes=["x"], timestamp=1)]
        graph = build_operation_graph(txs)
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 0

    def test_neighbour_queries_and_order(self):
        txs = [
            make_tx("a", writes=["x"], timestamp=1),
            make_tx("b", reads=["x"], writes=["x"], timestamp=2),
        ]
        graph = build_operation_graph(txs)
        assert graph.successors("a:write:x") == {"b:read:x", "b:write:x"}
        assert graph.predecessors("b:write:x") == {"a:write:x"}
        order = graph.topological_order()
        assert order.index("a:write:x") < order.index("b:read:x")

    def test_matches_networkx_pairwise_reference(self):
        """Per-key construction equals the seed's all-pairs networkx build."""
        nx = pytest.importorskip("networkx")
        from repro.core.transaction import OperationType

        import random

        rng = random.Random(99)
        keys = [f"k{i}" for i in range(5)]
        txs = []
        for i in range(15):
            reads = frozenset(rng.sample(keys, rng.randint(0, 2)))
            writes = frozenset(rng.sample(keys, rng.randint(0, 2)))
            txs.append(make_tx(f"t{i}", reads=reads, writes=writes, timestamp=i + 1))
        graph = build_operation_graph(txs)
        reference = nx.DiGraph()
        ordered = sorted(txs, key=lambda t: t.timestamp)
        for tx in ordered:
            for op in tx.operations():
                reference.add_node(f"{tx.tx_id}:{op.op_type.value}:{op.key}")
        for i, earlier_tx in enumerate(ordered):
            for later_tx in ordered[i + 1 :]:
                for earlier_op in earlier_tx.operations():
                    for later_op in later_tx.operations():
                        if earlier_op.key != later_op.key:
                            continue
                        if (
                            earlier_op.op_type is OperationType.READ
                            and later_op.op_type is OperationType.READ
                        ):
                            continue
                        reference.add_edge(
                            f"{earlier_tx.tx_id}:{earlier_op.op_type.value}:{earlier_op.key}",
                            f"{later_tx.tx_id}:{later_op.op_type.value}:{later_op.key}",
                        )
        assert set(graph.nodes()) == set(reference.nodes())
        assert set(graph.edges()) == set(reference.edges())


# ----------------------------------------------------------- property tests
_keys = st.sampled_from(["k0", "k1", "k2", "k3", "k4", "k5"])


@st.composite
def _random_block(draw):
    size = draw(st.integers(min_value=1, max_value=12))
    txs = []
    for i in range(size):
        reads = draw(st.frozensets(_keys, max_size=3))
        writes = draw(st.frozensets(_keys, max_size=3))
        txs.append(make_tx(f"t{i}", reads=reads, writes=writes, timestamp=i + 1))
    return txs


class TestDependencyGraphProperties:
    @given(_random_block())
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_pairwise_definition(self, txs):
        """The per-record construction equals the paper's pairwise definition."""
        graph = build_dependency_graph(txs)
        expected = set()
        for i, earlier in enumerate(txs):
            for later in txs[i + 1 :]:
                if has_ordering_dependency(earlier, later):
                    expected.add((earlier.tx_id, later.tx_id))
        assert {(e.source, e.target) for e in graph.edges()} == expected

    @given(_random_block())
    @settings(max_examples=60, deadline=None)
    def test_graph_is_acyclic_and_edges_follow_timestamps(self, txs):
        graph = build_dependency_graph(txs)
        by_id = {tx.tx_id: tx for tx in txs}
        for edge in graph.edges():
            assert by_id[edge.source].timestamp < by_id[edge.target].timestamp
        order = graph.topological_order()
        assert len(order) == len(txs)

    @given(_random_block())
    @settings(max_examples=60, deadline=None)
    def test_multi_version_graph_is_subgraph_of_single_version(self, txs):
        single = build_dependency_graph(txs, mode=GraphMode.SINGLE_VERSION)
        multi = build_dependency_graph(txs, mode=GraphMode.MULTI_VERSION)
        single_edges = {(e.source, e.target) for e in single.edges()}
        multi_edges = {(e.source, e.target) for e in multi.edges()}
        assert multi_edges <= single_edges

    @given(_random_block())
    @settings(max_examples=40, deadline=None)
    def test_critical_path_bounded_by_block_size(self, txs):
        graph = build_dependency_graph(txs)
        assert 1 <= graph.critical_path_length() <= len(txs)
