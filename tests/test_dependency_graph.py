"""Tests for dependency-graph construction — the paper's core data structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DependencyGraphError
from repro.core.dependency_graph import (
    ConflictType,
    DependencyEdge,
    DependencyGraph,
    GraphMode,
    build_dependency_graph,
    build_operation_graph,
    conflicts,
    contention_statistics,
    has_ordering_dependency,
)
from tests.conftest import make_tx


def paper_example_block():
    """The block of Figure 2: [T1, T5, T4, T3, T2] with the paper's conflicts.

    T1 writes b; T4 reads b (T1 ~> T4).  T5 writes d and reads e; T2 writes d
    (T5 ~> T2); T3 writes e (T5 ~> T3).
    """
    t1 = make_tx("T1", reads=["a"], writes=["b"], application="app-1", timestamp=1)
    t5 = make_tx("T5", reads=["e"], writes=["d"], application="app-2", timestamp=2)
    t4 = make_tx("T4", reads=["b"], writes=["f"], application="app-2", timestamp=3)
    t3 = make_tx("T3", reads=["g"], writes=["e"], application="app-1", timestamp=4)
    t2 = make_tx("T2", reads=["h"], writes=["d"], application="app-2", timestamp=5)
    return [t1, t5, t4, t3, t2]


class TestConflictDetection:
    def test_read_write_conflict(self):
        earlier = make_tx("a", reads=["x"], timestamp=1)
        later = make_tx("b", writes=["x"], timestamp=2)
        assert conflicts(earlier, later) == [ConflictType.READ_WRITE]
        assert has_ordering_dependency(earlier, later)

    def test_write_read_conflict(self):
        earlier = make_tx("a", writes=["x"], timestamp=1)
        later = make_tx("b", reads=["x"], timestamp=2)
        assert ConflictType.WRITE_READ in conflicts(earlier, later)

    def test_write_write_conflict(self):
        earlier = make_tx("a", writes=["x"], timestamp=1)
        later = make_tx("b", writes=["x"], timestamp=2)
        assert ConflictType.WRITE_WRITE in conflicts(earlier, later)

    def test_read_read_is_not_a_conflict(self):
        earlier = make_tx("a", reads=["x"], timestamp=1)
        later = make_tx("b", reads=["x"], timestamp=2)
        assert conflicts(earlier, later) == []
        assert not has_ordering_dependency(earlier, later)

    def test_no_dependency_against_timestamp_order(self):
        earlier = make_tx("a", writes=["x"], timestamp=2)
        later = make_tx("b", writes=["x"], timestamp=1)
        assert not has_ordering_dependency(earlier, later)

    def test_multi_version_only_write_read_orders(self):
        w = make_tx("w", writes=["x"], timestamp=1)
        r = make_tx("r", reads=["x"], timestamp=2)
        w2 = make_tx("w2", writes=["x"], timestamp=2)
        assert has_ordering_dependency(w, r, GraphMode.MULTI_VERSION)
        assert not has_ordering_dependency(w, w2, GraphMode.MULTI_VERSION)
        r1 = make_tx("r1", reads=["x"], timestamp=1)
        assert not has_ordering_dependency(r1, w2, GraphMode.MULTI_VERSION)


class TestPaperExample:
    def test_figure2_edges(self):
        graph = build_dependency_graph(paper_example_block())
        edge_pairs = {(e.source, e.target) for e in graph.edges()}
        assert edge_pairs == {("T1", "T4"), ("T5", "T2"), ("T5", "T3")}

    def test_figure2_concurrency(self):
        graph = build_dependency_graph(paper_example_block())
        # T1 and T2 are not connected and can be processed concurrently.
        assert "T2" not in graph.successors("T1")
        assert "T1" not in graph.predecessors("T2")
        assert graph.predecessors("T4") == {"T1"}
        assert graph.successors("T5") == {"T2", "T3"}
        assert set(graph.roots()) == {"T1", "T5"}

    def test_figure2_cross_application_edges(self):
        graph = build_dependency_graph(paper_example_block())
        cross = {(e.source, e.target) for e in graph.cross_application_edges()}
        assert ("T1", "T4") in cross  # app-1 -> app-2
        assert ("T5", "T3") in cross  # app-2 -> app-1
        assert graph.has_cross_application_dependency()


class TestGraphStructure:
    def test_no_contention_has_no_edges(self):
        txs = [make_tx(f"t{i}", reads=[f"r{i}"], writes=[f"w{i}"], timestamp=i + 1) for i in range(10)]
        graph = build_dependency_graph(txs)
        assert graph.edge_count == 0
        assert graph.critical_path_length() == 1
        assert not graph.is_chain()
        assert len(graph.components()) == 10
        assert graph.degree_of_contention() == 0.0

    def test_full_contention_is_a_chain(self):
        txs = [make_tx(f"t{i}", reads=["hot"], writes=["hot"], timestamp=i + 1) for i in range(8)]
        graph = build_dependency_graph(txs)
        assert graph.is_chain()
        assert graph.critical_path_length() == 8
        assert graph.degree_of_contention() == 1.0

    def test_partial_contention_profile(self):
        hot = [make_tx(f"h{i}", writes=["hot"], timestamp=i + 1) for i in range(3)]
        cold = [make_tx(f"c{i}", writes=[f"cold{i}"], timestamp=10 + i) for i in range(3)]
        graph = build_dependency_graph(hot + cold)
        assert graph.critical_path_length() == 3
        profile = graph.parallelism_profile()
        assert profile[0] == 4  # the three cold transactions plus the first hot one
        assert sum(profile) == 6

    def test_topological_order_respects_edges(self):
        graph = build_dependency_graph(paper_example_block())
        order = graph.topological_order()
        assert order.index("T1") < order.index("T4")
        assert order.index("T5") < order.index("T2")
        assert order.index("T5") < order.index("T3")

    def test_subgraph_for_application(self):
        graph = build_dependency_graph(paper_example_block())
        sub = graph.subgraph_for_application("app-2")
        assert set(sub.transaction_ids) == {"T5", "T4", "T2"}
        assert {(e.source, e.target) for e in sub.edges()} == {("T5", "T2")}

    def test_single_transaction_is_trivially_a_chain(self):
        graph = build_dependency_graph([make_tx("only", writes=["x"], timestamp=1)])
        assert graph.is_chain()
        assert graph.critical_path_length() == 1

    def test_contention_statistics(self):
        stats = contention_statistics(build_dependency_graph(paper_example_block()))
        assert stats["transactions"] == 5.0
        assert stats["edges"] == 3.0
        assert stats["cross_application_edges"] == 2.0


class TestGraphValidation:
    def test_duplicate_transaction_ids_rejected(self):
        txs = [make_tx("dup", timestamp=1), make_tx("dup", timestamp=2)]
        with pytest.raises(DependencyGraphError):
            DependencyGraph(txs, edges=[])

    def test_edge_against_timestamp_order_rejected(self):
        txs = [make_tx("a", timestamp=1), make_tx("b", timestamp=2)]
        bad_edge = DependencyEdge(source="b", target="a", kinds=(ConflictType.WRITE_WRITE,))
        with pytest.raises(DependencyGraphError):
            DependencyGraph(txs, edges=[bad_edge])

    def test_edge_with_unknown_transaction_rejected(self):
        txs = [make_tx("a", timestamp=1)]
        bad_edge = DependencyEdge(source="a", target="ghost", kinds=(ConflictType.WRITE_WRITE,))
        with pytest.raises(DependencyGraphError):
            DependencyGraph(txs, edges=[bad_edge])

    def test_unknown_lookup_rejected(self):
        graph = build_dependency_graph([make_tx("a", timestamp=1)])
        with pytest.raises(DependencyGraphError):
            graph.predecessors("ghost")

    def test_duplicate_timestamps_rejected(self):
        txs = [make_tx("a", writes=["x"], timestamp=1), make_tx("b", writes=["x"], timestamp=1)]
        with pytest.raises(DependencyGraphError):
            build_dependency_graph(txs)


class TestOperationGraph:
    def test_operation_graph_splits_transactions(self):
        txs = [
            make_tx("a", reads=["x"], writes=["y"], timestamp=1),
            make_tx("b", reads=["y"], writes=["z"], timestamp=2),
        ]
        graph = build_operation_graph(txs)
        assert graph.number_of_nodes() == 4
        # a's write of y must precede b's read of y.
        assert graph.has_edge("a:write:y", "b:read:y")

    def test_reads_do_not_conflict_at_operation_level(self):
        txs = [
            make_tx("a", reads=["x"], timestamp=1),
            make_tx("b", reads=["x"], timestamp=2),
        ]
        graph = build_operation_graph(txs)
        assert graph.number_of_edges() == 0


# ----------------------------------------------------------- property tests
_keys = st.sampled_from(["k0", "k1", "k2", "k3", "k4", "k5"])


@st.composite
def _random_block(draw):
    size = draw(st.integers(min_value=1, max_value=12))
    txs = []
    for i in range(size):
        reads = draw(st.frozensets(_keys, max_size=3))
        writes = draw(st.frozensets(_keys, max_size=3))
        txs.append(make_tx(f"t{i}", reads=reads, writes=writes, timestamp=i + 1))
    return txs


class TestDependencyGraphProperties:
    @given(_random_block())
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_pairwise_definition(self, txs):
        """The per-record construction equals the paper's pairwise definition."""
        graph = build_dependency_graph(txs)
        expected = set()
        for i, earlier in enumerate(txs):
            for later in txs[i + 1 :]:
                if has_ordering_dependency(earlier, later):
                    expected.add((earlier.tx_id, later.tx_id))
        assert {(e.source, e.target) for e in graph.edges()} == expected

    @given(_random_block())
    @settings(max_examples=60, deadline=None)
    def test_graph_is_acyclic_and_edges_follow_timestamps(self, txs):
        graph = build_dependency_graph(txs)
        by_id = {tx.tx_id: tx for tx in txs}
        for edge in graph.edges():
            assert by_id[edge.source].timestamp < by_id[edge.target].timestamp
        order = graph.topological_order()
        assert len(order) == len(txs)

    @given(_random_block())
    @settings(max_examples=60, deadline=None)
    def test_multi_version_graph_is_subgraph_of_single_version(self, txs):
        single = build_dependency_graph(txs, mode=GraphMode.SINGLE_VERSION)
        multi = build_dependency_graph(txs, mode=GraphMode.MULTI_VERSION)
        single_edges = {(e.source, e.target) for e in single.edges()}
        multi_edges = {(e.source, e.target) for e in multi.edges()}
        assert multi_edges <= single_edges

    @given(_random_block())
    @settings(max_examples=40, deadline=None)
    def test_critical_path_bounded_by_block_size(self, txs):
        graph = build_dependency_graph(txs)
        assert 1 <= graph.critical_path_length() <= len(txs)
