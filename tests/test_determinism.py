"""Determinism audit: one scenario seed, bit-identical runs, no RNG leakage.

The reproduction's claim is that every run is a pure function of its
``(spec, seed)`` pair.  These tests pin that down:

* labelled child seeds (:mod:`repro.common.rng`) are stable, decorrelated
  across labels, and the arrival stream no longer shares the workload
  generator's Mersenne stream (the correlation the audit found and fixed);
* an end-to-end run never touches Python's *global* RNG (no module-level
  ``random.*`` leakage anywhere on the run path);
* two runs of the same config are bit-identical — including fault-injection
  timings, ledger digests and world states under a fault schedule.
"""

from __future__ import annotations

import random

from repro.common.rng import child_rng, child_seed
from repro.paradigms.run import execute_run
from repro.testing import ScenarioConfig, run_scenario
from repro.workload.arrivals import poisson_rate


class TestChildSeeds:
    def test_stable_across_calls(self):
        assert child_seed(7, "arrivals") == child_seed(7, "arrivals")
        assert child_rng(7, "x").random() == child_rng(7, "x").random()

    def test_labels_decorrelate(self):
        assert child_seed(7, "arrivals") != child_seed(7, "faults")
        assert child_seed(7, "arrivals") != child_seed(8, "arrivals")
        # A child stream differs from the base stream with the raw seed.
        assert child_rng(7, "arrivals").random() != random.Random(7).random()

    def test_arrival_stream_not_workload_stream(self):
        """The audit's finding: seeding arrivals with the workload seed reused
        the generator's exact Mersenne stream; they must differ now."""
        raw = poisson_rate(16, 100.0, seed=7)
        derived = poisson_rate(16, 100.0, seed=child_seed(7, "arrivals"))
        assert raw.times != derived.times


class TestNoGlobalRNGLeakage:
    def test_execute_run_leaves_global_random_untouched(self):
        random.seed(12345)
        before = random.getstate()
        execute_run("OXII", offered_load=150, duration=0.5, drain=2.0, seed=11)
        assert random.getstate() == before, "a run consumed the module-level RNG"

    def test_fault_scenario_leaves_global_random_untouched(self):
        config = ScenarioConfig(paradigm="OX", seed=4, offered_load=150, duration=0.5)
        schedule = config.random_schedule(events=3)
        random.seed(999)
        before = random.getstate()
        run_scenario(config, schedule)
        assert random.getstate() == before


class TestBitIdenticalRuns:
    def test_execute_run_repeats_exactly(self):
        kwargs = dict(offered_load=200, duration=0.5, drain=3.0, seed=13)
        first = execute_run("OXII", **kwargs)
        second = execute_run("OXII", **kwargs)
        assert first.as_dict() == second.as_dict()

    def test_fault_scenarios_repeat_exactly_including_fault_timings(self):
        """Two runs of one (config, schedule): identical ledgers, states and
        injector application times — the acceptance bar for the harness."""
        for paradigm in ("OX", "XOV", "OXII"):
            config = ScenarioConfig(paradigm=paradigm, seed=21, offered_load=200, duration=0.8)
            schedule = config.random_schedule(events=4)
            first = run_scenario(config, schedule)
            second = run_scenario(config, schedule)
            assert first.fingerprint() == second.fingerprint(), paradigm
            assert first.injector.applied == second.injector.applied
            assert first.injector.applied, "schedule should have applied events"

    def test_schedule_generation_is_a_pure_function_of_the_seed(self):
        config = ScenarioConfig(paradigm="OXII", seed=5)
        assert config.random_schedule(events=5) == config.random_schedule(events=5)
        other = ScenarioConfig(paradigm="OXII", seed=6)
        assert config.random_schedule(events=5) != other.random_schedule(events=5)
