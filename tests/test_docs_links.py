"""Fast guard: no dead relative links in README/docs.

The docs CI job additionally executes the documented snippets
(``tools/check_docs.py``); this tier-1 test only runs the cheap link pass so
a dead link fails `pytest` locally too.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_no_dead_links_in_readme_and_docs():
    errors = []
    for doc in [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]:
        errors.extend(check_docs.check_links(doc))
    assert errors == []


def test_github_slug_rules():
    assert check_docs.github_slug("Registering a custom workload") == (
        "registering-a-custom-workload"
    )
    assert check_docs.github_slug("## `code` and *stars*!") == "-code-and-stars"


def test_snippet_scanner_finds_and_skips():
    doc = REPO_ROOT / "docs" / "workloads.md"
    snippets = list(check_docs.python_snippets(doc))
    assert len(snippets) >= 4
    assert any(not skipped for _, _, skipped in snippets)
