"""Tests for Algorithms 1-3: scheduling, commit batching and state updates."""

from __future__ import annotations

import pytest

from repro.common.errors import DependencyGraphError
from repro.core.dependency_graph import build_dependency_graph
from repro.core.execution import (
    CommitBatcher,
    CommitMessage,
    ExecutionEngine,
    GraphScheduler,
    StateUpdater,
)
from repro.core.transaction import TransactionResult
from tests.conftest import make_tx


def chain_block():
    """Three transactions forming a chain t0 -> t1 -> t2 on a hot key."""
    return [make_tx(f"t{i}", reads=["hot"], writes=["hot"], timestamp=i + 1) for i in range(3)]


def cross_app_block():
    """T1(app-0) -> T2(app-1) -> T3(app-0): the Figure 4(c) situation."""
    t1 = make_tx("T1", writes=["x"], application="app-0", timestamp=1)
    t2 = make_tx("T2", reads=["x"], writes=["y"], application="app-1", timestamp=2)
    t3 = make_tx("T3", reads=["y"], writes=["z"], application="app-0", timestamp=3)
    return [t1, t2, t3]


def result_for(tx, updates=None, executor="e0", status="ok"):
    return TransactionResult(
        tx_id=tx.tx_id, application=tx.application, updates=updates or {}, status=status,
        executed_by=executor,
    )


class TestGraphScheduler:
    def test_roots_are_ready_immediately(self):
        txs = [make_tx(f"t{i}", writes=[f"k{i}"], timestamp=i + 1) for i in range(4)]
        graph = build_dependency_graph(txs)
        scheduler = GraphScheduler(graph, assigned=[t.tx_id for t in txs])
        ready = scheduler.ready_transactions()
        assert {t.tx_id for t in ready} == {t.tx_id for t in txs}

    def test_ready_transactions_not_returned_twice(self):
        graph = build_dependency_graph(chain_block())
        scheduler = GraphScheduler(graph, assigned=["t0", "t1", "t2"])
        assert [t.tx_id for t in scheduler.ready_transactions()] == ["t0"]
        assert scheduler.ready_transactions() == []

    def test_chain_unlocks_one_at_a_time(self):
        graph = build_dependency_graph(chain_block())
        scheduler = GraphScheduler(graph, assigned=["t0", "t1", "t2"])
        assert [t.tx_id for t in scheduler.ready_transactions()] == ["t0"]
        scheduler.mark_executed("t0")
        assert [t.tx_id for t in scheduler.ready_transactions()] == ["t1"]
        scheduler.mark_executed("t1")
        assert [t.tx_id for t in scheduler.ready_transactions()] == ["t2"]
        scheduler.mark_executed("t2")
        assert scheduler.is_done()

    def test_remote_commit_unlocks_dependant(self):
        """A predecessor executed by another agent unlocks via mark_committed."""
        graph = build_dependency_graph(cross_app_block())
        scheduler = GraphScheduler(graph, assigned=["T2"])  # agent of app-1 only
        assert scheduler.ready_transactions() == []
        assert scheduler.blocked_on("T2") == {"T1"}
        scheduler.mark_committed("T1")
        assert [t.tx_id for t in scheduler.ready_transactions()] == ["T2"]

    def test_unknown_assignment_rejected(self):
        graph = build_dependency_graph(chain_block())
        with pytest.raises(DependencyGraphError):
            GraphScheduler(graph, assigned=["ghost"])

    def test_commit_for_foreign_transaction_is_ignored(self):
        graph = build_dependency_graph(chain_block())
        scheduler = GraphScheduler(graph, assigned=["t0"])
        scheduler.mark_committed("not-in-this-block")  # must not raise
        assert scheduler.committed == set()


class TestCommitBatcher:
    def test_no_flush_without_cross_application_successor(self):
        graph = build_dependency_graph(chain_block())
        batcher = CommitBatcher(graph, executor="e0", block_sequence=1)
        tx0 = graph.transaction("t0")
        assert batcher.add_result(result_for(tx0)) is None
        assert len(batcher.pending_results) == 1

    def test_flush_on_cross_application_cut_edge(self):
        graph = build_dependency_graph(cross_app_block())
        batcher = CommitBatcher(graph, executor="e0", block_sequence=1)
        message = batcher.add_result(result_for(graph.transaction("T1")))
        assert message is not None
        assert [r.tx_id for r in message.results] == ["T1"]
        assert batcher.pending_results == []

    def test_flush_accumulates_prior_results(self):
        """Results executed before the cut are carried in the same commit message."""
        t_other = make_tx("T0", writes=["q"], application="app-0", timestamp=1)
        t1 = make_tx("T1", writes=["x"], application="app-0", timestamp=2)
        t2 = make_tx("T2", reads=["x"], application="app-1", timestamp=3)
        graph = build_dependency_graph([t_other, t1, t2])
        batcher = CommitBatcher(graph, executor="e0", block_sequence=1)
        assert batcher.add_result(result_for(t_other)) is None
        message = batcher.add_result(result_for(t1))
        assert message is not None
        assert [r.tx_id for r in message.results] == ["T0", "T1"]

    def test_final_flush_returns_remainder(self):
        graph = build_dependency_graph(chain_block())
        batcher = CommitBatcher(graph, executor="e0", block_sequence=4)
        batcher.add_result(result_for(graph.transaction("t0")))
        message = batcher.flush()
        assert message is not None
        assert message.block_sequence == 4
        assert batcher.flush() is None

    def test_message_count_savings_versus_per_transaction(self):
        """Batching sends far fewer commit messages than one-per-transaction."""
        txs = [make_tx(f"t{i}", writes=[f"k{i}"], application="app-0", timestamp=i + 1) for i in range(20)]
        graph = build_dependency_graph(txs)
        batcher = CommitBatcher(graph, executor="e0", block_sequence=1)
        messages = [batcher.add_result(result_for(tx)) for tx in txs]
        messages.append(batcher.flush())
        sent = [m for m in messages if m is not None]
        assert len(sent) == 1  # single-application block -> one commit message


class TestStateUpdater:
    def _updater(self, txs, tau=1, agents=None):
        applied = {}
        agents = agents or {"app-0": ["e0", "e1"], "app-1": ["e2", "e3"]}

        def is_agent(executor, application):
            return executor in agents.get(application, [])

        updater = StateUpdater(
            block_transactions=txs,
            tau=lambda app: tau,
            is_agent=is_agent,
            apply_update=lambda result: applied.update(result.updates),
        )
        return updater, applied

    def test_commit_after_tau_matching_results(self):
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=2)
        t1 = txs[0]
        first = CommitMessage(executor="e0", block_sequence=1, results=(result_for(t1, {"x": 1}, "e0"),))
        assert updater.receive(first) == []
        second = CommitMessage(executor="e1", block_sequence=1, results=(result_for(t1, {"x": 1}, "e1"),))
        assert updater.receive(second) == ["T1"]
        assert applied == {"x": 1}
        assert updater.committed_ids == {"T1"}

    def test_non_agent_votes_are_ignored(self):
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=1)
        bogus = CommitMessage(executor="e2", block_sequence=1, results=(result_for(txs[0], {"x": 9}, "e2"),))
        assert updater.receive(bogus) == []  # e2 is not an agent of app-0
        assert applied == {}

    def test_duplicate_votes_from_same_executor_do_not_count_twice(self):
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=2)
        msg = CommitMessage(executor="e0", block_sequence=1, results=(result_for(txs[0], {"x": 1}, "e0"),))
        updater.receive(msg)
        updater.receive(msg)
        assert updater.committed_ids == set()

    def test_mismatching_results_do_not_commit(self):
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=2)
        updater.receive(CommitMessage(executor="e0", block_sequence=1, results=(result_for(txs[0], {"x": 1}, "e0"),)))
        updater.receive(CommitMessage(executor="e1", block_sequence=1, results=(result_for(txs[0], {"x": 2}, "e1"),)))
        assert updater.committed_ids == set()

    def test_aborted_results_commit_without_state_change(self):
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=1)
        abort = TransactionResult.abort(txs[0], executed_by="e0")
        updater.receive(CommitMessage(executor="e0", block_sequence=1, results=(abort,)))
        assert updater.committed_ids == {"T1"}
        assert applied == {}

    def test_out_of_order_commits_respect_block_order_per_key(self):
        """Votes for two writers of one record arriving in reverse block order
        must still commit the *later* writer's value (the dependency-graph
        order), not the last arrival's — the divergence the fault battery's
        serializability oracle caught on reordered links."""
        t_early = make_tx("W1", writes=["hot"], application="app-0", timestamp=1)
        t_late = make_tx("W2", writes=["hot", "other"], application="app-1", timestamp=2)
        updater, applied = self._updater([t_early, t_late], tau=1)
        # The later writer's COMMIT arrives first (independent links).
        updater.receive(
            CommitMessage(executor="e2", block_sequence=1,
                          results=(result_for(t_late, {"hot": "late", "other": 1}, "e2"),))
        )
        updater.receive(
            CommitMessage(executor="e0", block_sequence=1,
                          results=(result_for(t_early, {"hot": "early"}, "e0"),))
        )
        assert applied == {"hot": "late", "other": 1}
        assert updater.effective_updates("W2") == {"hot": "late", "other": 1}
        # The stale write was gated out entirely.
        assert updater.effective_updates("W1") == {}
        # Both transactions still committed with their original winning results.
        assert updater.committed_ids == {"W1", "W2"}
        assert updater.committed_result("W1").updates == {"hot": "early"}

    def test_results_for_unknown_transactions_are_ignored(self):
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=1)
        foreign = TransactionResult(tx_id="ghost", application="app-0", updates={"x": 1})
        updater.receive(CommitMessage(executor="e0", block_sequence=1, results=(foreign,)))
        assert updater.committed_ids == set()

    def test_batched_apply_path(self):
        """apply_batch receives every non-abort winner of a message at once."""
        txs = cross_app_block()
        batches = []
        updater = StateUpdater(
            block_transactions=txs,
            tau=lambda app: 1,
            is_agent=lambda executor, app: True,
            apply_batch=batches.append,
        )
        abort = TransactionResult.abort(txs[2], executed_by="e0")
        message = CommitMessage(
            executor="e0",
            block_sequence=1,
            results=(result_for(txs[0], {"x": 1}), result_for(txs[1], {"y": 2}), abort),
        )
        assert updater.receive(message) == ["T1", "T2", "T3"]
        assert len(batches) == 1
        assert [r.tx_id for r in batches[0]] == ["T1", "T2"]  # aborts excluded
        assert updater.committed_ids == {"T1", "T2", "T3"}

    def test_updater_requires_an_apply_callback(self):
        with pytest.raises(ValueError):
            StateUpdater(
                block_transactions=cross_app_block(),
                tau=lambda app: 1,
                is_agent=lambda executor, app: True,
            )

    def test_vote_tally_commits_first_variant_to_reach_tau(self):
        """The single-pass tally commits the variant that reaches τ first."""
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=2, agents={"app-0": ["e0", "e1", "e4", "e5"]})
        t1 = txs[0]
        variant_a = {"x": 1}
        variant_b = {"x": 2}
        for executor, updates in (("e0", variant_a), ("e1", variant_b), ("e4", variant_b)):
            updater.receive(
                CommitMessage(
                    executor=executor,
                    block_sequence=1,
                    results=(result_for(t1, dict(updates), executor),),
                )
            )
        assert updater.committed_result("T1").updates == variant_b
        assert applied == variant_b

    def test_match_key_agrees_with_matches(self):
        txs = cross_app_block()
        base = result_for(txs[0], {"x": 1})
        same = result_for(txs[0], {"x": 1}, executor="e9")
        different_value = result_for(txs[0], {"x": 2})
        different_status = result_for(txs[0], {}, status="abort")
        unhashable = result_for(txs[0], {"x": [1, 2]})
        unhashable_same = result_for(txs[0], {"x": [1, 2]}, executor="e9")
        assert base.match_key() == same.match_key()
        assert base.matches(same)
        assert base.match_key() != different_value.match_key()
        assert base.match_key() != different_status.match_key()
        assert unhashable.match_key() == unhashable_same.match_key()
        assert unhashable.match_key() != base.match_key()
        hash(unhashable.match_key())  # usable as a dict key

    def test_match_key_preserves_python_equality_for_nested_values(self):
        """5 == 5.0 and list-carrying records must tally together, like matches()."""
        txs = cross_app_block()
        int_record = result_for(txs[0], {"acct": {"balance": 5, "log": [1, 2]}})
        float_record = result_for(txs[0], {"acct": {"balance": 5.0, "log": [1, 2]}}, executor="e9")
        assert int_record.matches(float_record)
        assert int_record.match_key() == float_record.match_key()
        tuple_log = result_for(txs[0], {"acct": {"balance": 5, "log": (1, 2)}})
        assert not int_record.matches(tuple_log)  # [1, 2] != (1, 2)
        assert int_record.match_key() != tuple_log.match_key()
        set_value = result_for(txs[0], {"tags": {1, 2}})
        frozenset_value = result_for(txs[0], {"tags": frozenset({1, 2})}, executor="e9")
        assert set_value.matches(frozenset_value)
        assert set_value.match_key() == frozenset_value.match_key()

    def test_mixed_type_votes_still_reach_tau(self):
        """Executors disagreeing only on int-vs-float must still commit."""
        txs = cross_app_block()
        updater, applied = self._updater(txs, tau=2)
        t1 = txs[0]
        updater.receive(
            CommitMessage(executor="e0", block_sequence=1,
                          results=(result_for(t1, {"acct": {"balance": 5}}, "e0"),))
        )
        committed = updater.receive(
            CommitMessage(executor="e1", block_sequence=1,
                          results=(result_for(t1, {"acct": {"balance": 5.0}}, "e1"),))
        )
        assert committed == ["T1"]

    @pytest.mark.parametrize(
        "first_updates, second_updates",
        [
            # Unhashable leaf: no faithful freeze exists -> pairwise bucket.
            ({"k": bytearray(b"v")}, {"k": bytearray(b"v")}),
            # Incomparable mixed dict keys: sorting raises -> pairwise bucket,
            # which still groups the ==-equal int/float variants together.
            ({1: "v", "b": 5}, {1: "v", "b": 5.0}),
        ],
    )
    def test_unfreezable_updates_fall_back_to_pairwise_matching(
        self, first_updates, second_updates
    ):
        txs = cross_app_block()
        updater, _ = self._updater(txs, tau=2)
        t1 = txs[0]
        first = result_for(t1, dict(first_updates), "e0")
        second = result_for(t1, dict(second_updates), "e1")
        assert first.matches(second)
        updater.receive(CommitMessage(executor="e0", block_sequence=1, results=(first,)))
        committed = updater.receive(
            CommitMessage(executor="e1", block_sequence=1, results=(second,))
        )
        assert committed == ["T1"]

    def test_unfreezable_mismatches_stay_apart(self):
        txs = cross_app_block()
        updater, _ = self._updater(txs, tau=2)
        t1 = txs[0]
        updater.receive(
            CommitMessage(executor="e0", block_sequence=1,
                          results=(result_for(t1, {"k": bytearray(b"a")}, "e0"),))
        )
        committed = updater.receive(
            CommitMessage(executor="e1", block_sequence=1,
                          results=(result_for(t1, {"k": bytearray(b"b")}, "e1"),))
        )
        assert committed == []

    def test_completion_tracking(self):
        txs = cross_app_block()
        updater, _ = self._updater(txs, tau=1)
        assert not updater.is_complete()
        for tx, executor in zip(txs, ["e0", "e2", "e0"]):
            updater.receive(
                CommitMessage(executor=executor, block_sequence=1, results=(result_for(tx, {}, executor),))
            )
        assert updater.is_complete()
        assert updater.pending_ids() == set()


class TestExecutionEngine:
    def _counter_runner(self):
        """A contract incrementing the hot key by one each execution."""

        def runner(tx, state):
            value = state.get("hot", 0)
            return TransactionResult(tx_id=tx.tx_id, application=tx.application, updates={"hot": value + 1})

        return runner

    def test_sequential_execution(self):
        engine = ExecutionEngine(self._counter_runner(), state={})
        results = engine.execute_sequentially(chain_block())
        assert engine.state["hot"] == 3
        assert [r.tx_id for r in results] == ["t0", "t1", "t2"]

    def test_graph_execution_matches_sequential_on_chain(self):
        graph = build_dependency_graph(chain_block())
        engine = ExecutionEngine(self._counter_runner(), state={})
        engine.execute_with_graph(graph)
        assert engine.state["hot"] == 3

    def test_graph_execution_matches_sequential_on_mixed_block(self):
        txs = [
            make_tx("a", reads=["hot"], writes=["hot"], timestamp=1),
            make_tx("b", writes=["solo-b"], timestamp=2),
            make_tx("c", reads=["hot"], writes=["hot"], timestamp=3),
            make_tx("d", writes=["solo-d"], timestamp=4),
        ]

        def runner(tx, state):
            if "hot" in tx.write_set:
                return TransactionResult(tx_id=tx.tx_id, application=tx.application,
                                         updates={"hot": state.get("hot", 0) + 1})
            return TransactionResult(tx_id=tx.tx_id, application=tx.application,
                                     updates={tx.tx_id: "done"})

        sequential = ExecutionEngine(runner, state={})
        sequential.execute_sequentially(txs)
        graph_engine = ExecutionEngine(runner, state={})
        graph_engine.execute_with_graph(build_dependency_graph(txs))
        assert graph_engine.state == sequential.state

    def test_aborted_transactions_do_not_update_state(self):
        def runner(tx, state):
            return TransactionResult.abort(tx)

        engine = ExecutionEngine(runner, state={"hot": 0})
        engine.execute_with_graph(build_dependency_graph(chain_block()))
        assert engine.state == {"hot": 0}
