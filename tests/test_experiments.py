"""Tests for the declarative experiment API: specs, registries, sweep engine."""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest

from repro.common.errors import ConfigurationError
from repro.common.registry import Registry, paradigm_registry, register_paradigm
from repro.experiments import (
    RESULT_SCHEMA_VERSION,
    SPEC_SCHEMA_VERSION,
    ExperimentSpec,
    ScenarioSpec,
    SweepEngine,
    config_overrides,
    single_point_spec,
)
from repro.common.config import SystemConfig
from repro.paradigms import OXIIDeployment
from repro.paradigms.run import PARADIGMS, execute_run, run_paradigm
from repro.workload.generator import ConflictScope, WorkloadConfig

QUICK_RUN = dict(duration=0.4, drain=1.0)


def tiny_spec(**overrides) -> ExperimentSpec:
    data = {
        "name": "tiny",
        "loads": [400.0],
        "duration": 0.4,
        "drain": 1.0,
        "scenarios": [
            {"name": "oxii", "paradigm": "OXII", "contention": 0.2},
            {"name": "ox", "paradigm": "OX"},
        ],
    }
    data.update(overrides)
    return ExperimentSpec.from_dict(data)


class TestScenarioSpec:
    def test_defaults_and_validation(self):
        scenario = ScenarioSpec(name="s")
        assert scenario.paradigm == "OXII"
        assert scenario.generator == "accounting"
        assert scenario.conflict_scope == ConflictScope.WITHIN_APPLICATION.value

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", contention=1.5)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", conflict_scope="sideways")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", loads=(0.0,))

    def test_rejects_reserved_workload_keys(self):
        for key in ("contention", "conflict_scope", "seed"):
            with pytest.raises(ConfigurationError, match="scenario/experiment-level"):
                ScenarioSpec(name="s", workload={key: 1})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown scenario field"):
            ScenarioSpec.from_dict({"name": "s", "block_size": 100})

    def test_faults_section_validated_and_round_tripped(self):
        scenario = ScenarioSpec(name="s", faults={"random": {"events": 3, "horizon": 1.0}})
        assert ScenarioSpec.from_dict(scenario.to_dict()) == scenario
        with pytest.raises(ConfigurationError, match="'events' or 'random'"):
            ScenarioSpec(name="s", faults={"chaos": True})
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            ScenarioSpec(name="s", faults=["crash"])

    def test_faults_reach_the_expanded_points(self):
        spec = tiny_spec(
            scenarios=[
                {"name": "adversarial", "paradigm": "OX",
                 "system": {"recovery": {"enabled": True}},
                 "faults": {"random": {"events": 2, "horizon": 1.0}}},
            ]
        )
        point = spec.expand()[0]
        assert point.faults == {"random": {"events": 2, "horizon": 1.0}}
        assert point.as_dict()["faults"] == point.faults


class TestExperimentSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = tiny_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert ExperimentSpec.from_file(path) == spec

    def test_toml_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "toml-spec"',
                    "loads = [500.0]",
                    "duration = 0.4",
                    "[[scenarios]]",
                    'name = "xov"',
                    'paradigm = "XOV"',
                    "contention = 0.8",
                    "[scenarios.system.block_cut]",
                    "max_transactions = 100",
                ]
            ),
            encoding="utf-8",
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "toml-spec"
        scenario = spec.scenario("xov")
        assert scenario.system == {"block_cut": {"max_transactions": 100}}
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_unsupported_file_type(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: nope\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unsupported spec file type"):
            ExperimentSpec.from_file(path)

    def test_unknown_fields_and_schema_version(self):
        with pytest.raises(ConfigurationError, match="unknown experiment field"):
            tiny_spec(threads=8)
        with pytest.raises(ConfigurationError, match="schema_version"):
            tiny_spec(schema_version=SPEC_SCHEMA_VERSION + 1)

    def test_non_integer_repeats_rejected_at_load(self):
        with pytest.raises(ConfigurationError, match="repeats must be an integer"):
            tiny_spec(repeats=1.5)
        assert tiny_spec(repeats=2.0).repeats == 2  # integral floats coerce

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate scenario name"):
            tiny_spec(scenarios=[{"name": "a"}, {"name": "a"}])

    def test_needs_scenarios_and_loads(self):
        with pytest.raises(ConfigurationError, match="at least one scenario"):
            tiny_spec(scenarios=[])
        with pytest.raises(ConfigurationError, match="no loads"):
            tiny_spec(loads=[])

    def test_spec_hash_tracks_content(self):
        spec = tiny_spec()
        assert spec.spec_hash() == tiny_spec().spec_hash()
        assert spec.spec_hash() != tiny_spec(name="other").spec_hash()


class TestMatrixExpansion:
    def test_matrix_shape_and_order(self):
        spec = tiny_spec(loads=[400.0, 800.0], seeds=[1, 2], repeats=2)
        points = spec.expand()
        # 2 scenarios x 2 seeds x 2 repeats x 2 loads
        assert len(points) == 16
        assert [p.index for p in points] == list(range(16))
        first = points[0]
        assert (first.scenario, first.base_seed, first.repeat, first.offered_load) == (
            "oxii", 1, 0, 400.0,
        )
        # Repeats decorrelate the effective seed but stay deterministic.
        from repro.experiments.spec import repeat_seed

        seeds = {(p.base_seed, p.repeat, p.seed) for p in points}
        assert all(seed == repeat_seed(base, repeat) for base, repeat, seed in seeds)
        assert all(seed == base for base, repeat, seed in seeds if repeat == 0)

    def test_repeat_seeds_never_collide_across_base_seeds(self):
        # A linear stride (seed + r*K) would make (7, r=1) collide with
        # (7+K, r=0); the hash-based derivation must keep every point distinct.
        spec = tiny_spec(seeds=[7, 7926], repeats=2)
        effective = [(p.scenario, p.seed) for p in spec.expand()]
        assert len(set(effective)) == len(effective)

    def test_scenario_loads_override_experiment_default(self):
        spec = tiny_spec(
            scenarios=[{"name": "s", "paradigm": "OX", "loads": [123.0, 456.0]}]
        )
        assert [p.offered_load for p in spec.expand()] == [123.0, 456.0]

    def test_point_workload_carries_scenario_fields(self):
        spec = tiny_spec()
        point = spec.expand()[0]
        assert point.workload["contention"] == 0.2
        assert point.workload["conflict_scope"] == ConflictScope.WITHIN_APPLICATION.value
        assert point.workload["seed"] == 7


class TestConfigOverrides:
    def test_round_trips_system_config(self):
        config = SystemConfig(num_orderers=5).with_block_size(50).with_far_groups(["clients"])
        overrides = config_overrides(config)
        assert overrides == {
            "num_orderers": 5,
            "block_cut": {"max_transactions": 50},
            "far_groups": ["clients"],
        }
        assert SystemConfig().with_overrides(**overrides) == config

    def test_default_config_has_no_overrides(self):
        assert config_overrides(SystemConfig()) == {}


class TestRegistry:
    def test_builtins_registered(self):
        assert set(PARADIGMS) == {"OX", "XOV", "OXII"}
        assert paradigm_registry.get("oxii") is OXIIDeployment  # case-insensitive

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="unknown paradigm 'POW'"):
            paradigm_registry.get("POW")

    def test_duplicate_rejected_same_object_idempotent(self):
        registry = Registry("thing")
        registry.register("a", object())
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", object())
        same = registry.get("a")
        assert registry.register("a", same) is same  # re-registering is a no-op
        registry.register("a", object(), replace=True)  # explicit override allowed

    def test_every_deployment_respects_contract_field(self):
        from repro.contracts.kvstore import KeyValueContract
        from repro.paradigms import OXDeployment, XOVDeployment

        config = SystemConfig().with_overrides(contract="kvstore")
        for deployment_cls in (OXDeployment, XOVDeployment, OXIIDeployment):
            contracts = deployment_cls(config).build_contracts()
            assert all(
                isinstance(contracts.contract(app), KeyValueContract)
                for app in contracts.applications()
            ), deployment_cls.__name__

    def test_decorator_registration_and_live_view(self):
        @register_paradigm("TESTONLY")
        class TestOnlyDeployment(OXIIDeployment):
            pass

        try:
            assert "TESTONLY" in PARADIGMS  # live view over the registry
            assert PARADIGMS["testonly"] is TestOnlyDeployment
        finally:
            paradigm_registry.unregister("TESTONLY")
        assert "TESTONLY" not in PARADIGMS


class TestSweepEngine:
    def test_serial_and_parallel_results_identical(self):
        spec = tiny_spec()
        serial = SweepEngine(parallel=False).run(spec)
        parallel = SweepEngine(workers=2).run(spec)
        assert parallel.provenance["engine"]["parallel"] is True
        assert [r.metrics for r in serial.rows] == [r.metrics for r in parallel.rows]
        assert [r.point for r in serial.rows] == [r.point for r in parallel.rows]

    def test_same_spec_same_rows(self):
        spec = tiny_spec()
        first = SweepEngine(parallel=False).run(spec)
        second = SweepEngine(parallel=False).run(spec)
        assert first.rows_as_dicts() == second.rows_as_dicts()

    def test_result_provenance_and_json(self, tmp_path):
        spec = tiny_spec(scenarios=[{"name": "oxii", "loads": [1000.0]}], loads=[1000.0])
        result = SweepEngine(parallel=False).run(spec)
        assert result.provenance["result_schema_version"] == RESULT_SCHEMA_VERSION
        assert result.provenance["spec_hash"] == spec.spec_hash()
        path = tmp_path / "result.json"
        result.to_json(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["provenance"]["spec_schema_version"] == SPEC_SCHEMA_VERSION
        assert payload["spec"] == spec.to_dict()
        assert len(payload["rows"]) == 1
        row = payload["rows"][0]
        assert row["scenario"] == "oxii"
        assert row["committed"] > 0

    def test_scenario_overrides_reach_the_deployment(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "override-probe",
                "loads": [300.0],
                "duration": 0.4,
                "drain": 1.0,
                "scenarios": [
                    {
                        "name": "small-blocks",
                        "paradigm": "OXII",
                        "system": {"block_cut": {"max_transactions": 10}},
                        "workload": {"num_clients": 5},
                    }
                ],
            }
        )
        result = SweepEngine(parallel=False).run(spec)
        metrics = result.rows[0].metrics
        # 10-transaction blocks => many more blocks than the 200-tx default.
        assert metrics.blocks_committed >= 10
        assert metrics.committed > 0


class TestFigureSpecEquivalence:
    def test_figure6_legacy_path_equals_json_spec_run(self, tmp_path):
        from repro.bench.figure6 import figure6_spec, run_figure6
        from repro.bench.runner import BenchmarkSettings

        settings = BenchmarkSettings(quick=True, duration=0.4, drain=1.0)
        legacy = run_figure6(
            contention_levels=[0.0], settings=settings, include_cross_application=False
        )

        # The same grid as a JSON spec file, run through the generic engine.
        path = tmp_path / "figure6_quick.json"
        figure6_spec([0.0], settings, include_cross_application=False).to_json(path)
        result = SweepEngine(parallel=False).run(ExperimentSpec.from_file(path))

        engine_metrics = [row.metrics.as_dict() for row in result.rows]
        legacy_metrics = [
            {key: row[key] for key in engine_metrics[0]} for row in legacy.as_rows()
        ]
        assert legacy_metrics == engine_metrics

    def test_figure6_spec_uses_explicit_base_config_exactly(self):
        # Legacy contract: a caller-supplied config is used as given, block
        # size included — the per-paradigm defaults must not overwrite it.
        from repro.bench.figure6 import figure6_spec
        from repro.bench.runner import BenchmarkSettings

        base = SystemConfig().with_block_size(400)
        spec = figure6_spec([0.2], BenchmarkSettings(quick=True), base_config=base)
        for scenario in spec.scenarios:
            assert scenario.system == {"block_cut": {"max_transactions": 400}}


class TestRunParadigmShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="run_paradigm"):
            run_paradigm("OXII", offered_load=200.0, **QUICK_RUN)

    def test_shim_matches_engine(self):
        spec = single_point_spec(
            "shim", "OXII", offered_load=300.0, contention=0.2, seed=11, **QUICK_RUN
        )
        engine_metrics = SweepEngine(parallel=False).run(spec).rows[0].metrics
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim_metrics = run_paradigm(
                "OXII",
                offered_load=300.0,
                workload_config=WorkloadConfig(num_applications=3, contention=0.2),
                seed=11,
                **QUICK_RUN,
            )
        assert shim_metrics == engine_metrics

    def test_seed_copy_preserves_every_workload_field(self):
        # The old shim rebuilt WorkloadConfig field-by-field and silently
        # dropped newly added fields; dataclasses.replace must keep them all.
        custom = WorkloadConfig(
            num_applications=3, num_clients=5, contention=0.5, hot_accounts=2
        )
        with_seed = execute_run(
            "OXII",
            workload_config=custom,
            offered_load=300.0,
            seed=3,
            **QUICK_RUN,
        )
        explicit = execute_run(
            "OXII",
            workload_config=dataclasses.replace(custom, seed=3),
            offered_load=300.0,
            **QUICK_RUN,
        )
        assert with_seed == explicit

    def test_unknown_paradigm_raises_configuration_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigurationError, match="unknown paradigm"):
                run_paradigm("pow")
