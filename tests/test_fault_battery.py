"""The seeded random fault battery, plus the broken-commit-rule canary.

For every seed and paradigm the battery generates a random fault schedule
(crashes, partitions, link drops/delays/duplication/reordering — all healing
before the horizon), runs the full deployment under it and requires all four
oracles to pass.  On a failure the schedule is shrunk to its minimal failing
form and dumped as a JSON repro artifact (CI uploads it).

``REPRO_FAULT_SEEDS`` widens the sweep (the CI fault-battery job runs 30
seeds x 3 paradigms; the tier-1 default stays small for speed).
``REPRO_FAULT_ARTIFACT_DIR`` picks where failing schedules land.

The canary test mutates OXII's commit rule in-process (the speculative read
view of Algorithm 1 stops applying predecessor results) and demands that the
serializability oracle catches it — with a shrunken schedule of at most five
fault events emitted as an artifact.  That closes the loop: the battery is
only trustworthy if a real safety bug cannot slip past it.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.nodes import executor as executor_module
from repro.sharding import coordinator as coordinator_module
from repro.testing import (
    ScenarioConfig,
    check_cross_shard_atomicity,
    check_serializability,
    dump_repro_artifact,
    run_all_oracles,
    run_scenario,
    shrink_schedule,
)

#: Seeds per paradigm; CI sets REPRO_FAULT_SEEDS=30 for the full battery.
BATTERY_SEEDS = int(os.environ.get("REPRO_FAULT_SEEDS", "3"))
ARTIFACT_DIR = Path(os.environ.get("REPRO_FAULT_ARTIFACT_DIR", "."))

PARADIGMS = ("OX", "XOV", "OXII")
#: Rotate the ordering protocol with the seed so the battery covers all three.
CONSENSUS_ROTATION = (("kafka", 0, 3), ("raft", 1, 3), ("pbft", 1, 4))


def battery_config(paradigm: str, seed: int) -> ScenarioConfig:
    # Decorrelated rotations: consensus advances every 3 seeds while
    # contention cycles per seed, so 9 consecutive seeds cover the full
    # consensus × contention cross product (a shared modulus would pin each
    # protocol to a single contention level forever).
    consensus, f, orderers = CONSENSUS_ROTATION[(seed // 3) % len(CONSENSUS_ROTATION)]
    return ScenarioConfig(
        paradigm=paradigm,
        seed=seed,
        offered_load=250,
        duration=1.0,
        contention=(0.0, 0.3, 0.8)[seed % 3],
        conflict_scope=("within_application", "cross_application")[(seed // 2) % 2],
        consensus=consensus,
        max_faulty_orderers=f,
        num_orderers=orderers,
    )


@pytest.mark.parametrize("paradigm", PARADIGMS)
@pytest.mark.parametrize("seed", range(BATTERY_SEEDS))
def test_random_fault_battery(paradigm: str, seed: int):
    config = battery_config(paradigm, seed)
    schedule = config.random_schedule(events=5)
    outcome = run_scenario(config, schedule)
    violations = run_all_oracles(outcome)
    if violations:
        def still_fails(candidate):
            return bool(run_all_oracles(run_scenario(config, candidate)))

        shrunk = shrink_schedule(schedule, still_fails, max_attempts=60)
        final = run_all_oracles(run_scenario(config, shrunk))
        artifact = dump_repro_artifact(
            ARTIFACT_DIR / f"fault-repro-{paradigm}-{seed}.json",
            config,
            shrunk,
            final or violations,
        )
        pytest.fail(
            f"{paradigm} seed={seed} violated oracles "
            f"({'; '.join(v.oracle for v in violations)}); "
            f"shrunken repro with {len(shrunk)} events at {artifact}"
        )


#: Shard counts the sharded battery rows sweep (× REPRO_FAULT_SEEDS seeds).
SHARD_COUNTS = (2, 4)


def sharded_battery_config(seed: int, num_shards: int) -> ScenarioConfig:
    """A sharded battery row: the unsharded rotation plus a shards section.

    The paradigm rotates with the seed (instead of a full cross product) so
    the sharded battery stays the same size as one unsharded paradigm sweep
    while still covering OX/XOV/OXII × kafka/raft/pbft × contention levels.
    """
    base = battery_config(PARADIGMS[seed % len(PARADIGMS)], seed)
    return replace(
        base,
        system={"num_applications": 4, "shards": {"num_shards": num_shards}},
    )


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", range(BATTERY_SEEDS))
def test_sharded_fault_battery(seed: int, num_shards: int):
    """The random battery over sharded deployments: faults now also hit the
    coordinator and whole shards (they are in every random role pool via the
    crash/partition targets), and all oracles — including cross-shard
    atomicity — must hold."""
    config = sharded_battery_config(seed, num_shards)
    schedule = config.random_schedule(events=5)
    outcome = run_scenario(config, schedule)
    violations = run_all_oracles(outcome)
    if violations:
        def still_fails(candidate):
            return bool(run_all_oracles(run_scenario(config, candidate)))

        shrunk = shrink_schedule(schedule, still_fails, max_attempts=60)
        final = run_all_oracles(run_scenario(config, shrunk))
        artifact = dump_repro_artifact(
            ARTIFACT_DIR / f"fault-repro-sharded-{num_shards}-{seed}.json",
            config,
            shrunk,
            final or violations,
        )
        pytest.fail(
            f"sharded({num_shards}) seed={seed} violated oracles "
            f"({'; '.join(v.oracle for v in violations)}); "
            f"shrunken repro with {len(shrunk)} events at {artifact}"
        )


class TestBrokenCommitRuleIsCaught:
    def test_serializability_oracle_catches_a_mutated_commit_rule(self, monkeypatch, tmp_path):
        """Disable the speculative read view (Algorithm 1's C_e ∪ X_e overlay):
        executors commit results computed against stale state.  The oracle
        must fire, and the shrinker must reduce the schedule to ≤ 5 events."""
        config = ScenarioConfig(
            paradigm="OXII", seed=5, offered_load=250, duration=1.0, contention=0.5,
        )
        schedule = config.random_schedule(events=8)

        monkeypatch.setattr(
            executor_module._SpeculativeView, "apply", lambda self, updates: None
        )

        def still_fails(candidate):
            return bool(check_serializability(run_scenario(config, candidate)))

        assert still_fails(schedule), "mutated commit rule must violate serializability"
        shrunk = shrink_schedule(schedule, still_fails, max_attempts=60)
        assert len(shrunk) <= 5, f"shrunken schedule still has {len(shrunk)} events"

        outcome = run_scenario(config, shrunk)
        violations = check_serializability(outcome)
        assert violations and all(v.oracle == "serializability" for v in violations)
        artifact = dump_repro_artifact(
            tmp_path / "broken-commit-rule.json", config, shrunk, violations
        )
        assert artifact.exists()

    def test_restored_commit_rule_passes_again(self):
        """Guard against the canary leaking state: the same scenario is clean
        with the real commit rule."""
        config = ScenarioConfig(
            paradigm="OXII", seed=5, offered_load=250, duration=1.0, contention=0.5,
        )
        outcome = run_scenario(config, config.random_schedule(events=8))
        assert not run_all_oracles(outcome)


def _sharded_canary_config() -> ScenarioConfig:
    # Contention > 0 produces cross-shard lock conflicts, i.e. abort votes —
    # the inputs a broken commit rule mishandles.
    return ScenarioConfig(
        paradigm="OXII",
        seed=11,
        offered_load=300.0,
        duration=1.0,
        contention=0.3,
        system={"num_applications": 4, "shards": {"num_shards": 2}},
    )


class TestBrokenCrossShardCommitRuleIsCaught:
    def test_atomicity_oracle_catches_a_mutated_decision_rule(self, monkeypatch, tmp_path):
        """Force every shard's decision record to COMMIT regardless of the
        coordinator's actual verdict: shards that voted abort now see a commit
        decision.  The cross-shard atomicity oracle (which re-derives the true
        votes from the chains) must fire, and the shrinker must reduce the
        schedule to a small repro artifact."""
        config = _sharded_canary_config()
        schedule = config.random_schedule(events=6)

        real = coordinator_module.make_decision_record

        def forced_commit(
            transaction, shard, participants, local_keys,
            decision, reason, updates, coordinator, now,
        ):
            return real(
                transaction, shard, participants, local_keys,
                "commit", "", updates, coordinator, now,
            )

        monkeypatch.setattr(coordinator_module, "make_decision_record", forced_commit)

        def still_fails(candidate):
            return bool(check_cross_shard_atomicity(run_scenario(config, candidate)))

        assert still_fails(schedule), "mutated decision rule must violate atomicity"
        shrunk = shrink_schedule(schedule, still_fails, max_attempts=60)
        assert len(shrunk) <= 3, f"shrunken schedule still has {len(shrunk)} events"

        outcome = run_scenario(config, shrunk)
        violations = check_cross_shard_atomicity(outcome)
        assert violations and all(v.oracle == "cross_shard_atomicity" for v in violations)
        assert any("voted abort" in v.message for v in violations)
        artifact = dump_repro_artifact(
            tmp_path / "broken-cross-shard-commit.json", config, shrunk, violations
        )
        assert artifact.exists()

    def test_restored_decision_rule_passes_again(self):
        """Same scenario, real decision rule: every oracle is clean."""
        config = _sharded_canary_config()
        outcome = run_scenario(config, config.random_schedule(events=6))
        assert not run_all_oracles(outcome)
