"""Named fault scenarios: targeted adversarial runs per protocol and paradigm.

Each test is one small, fully deterministic scenario with a hand-written
fault schedule aimed at a specific mechanism: leader/primary crashes for
every ordering protocol, partitions that cut off endorsers (XOV) or an
application's only agent (OXII), duplicate and reordered COMMIT delivery,
and at-least-once client request delivery.  Every scenario must satisfy all
four oracles — prefix agreement, no loss/duplication, serializability and
(since every schedule heals) liveness.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    FaultEvent,
    FaultSchedule,
    ScenarioConfig,
    run_all_oracles,
    run_scenario,
)


def assert_clean(outcome):
    violations = run_all_oracles(outcome)
    assert not violations, "\n".join(
        f"[{v.oracle}] {v.node_id}: {v.message}" for v in violations
    )
    assert outcome.stable, "scenario did not settle"


def crash_window(target: str, start: float, end: float) -> FaultSchedule:
    return FaultSchedule(events=(
        FaultEvent(at=start, action="crash", target=target),
        FaultEvent(at=end, action="restart", target=target),
    ))


class TestOrderingLeaderCrash:
    """Crash the entry orderer mid-run under each ordering protocol."""

    @pytest.mark.parametrize(
        "consensus,f,orderers",
        [("kafka", 0, 3), ("raft", 1, 3), ("pbft", 1, 4)],
    )
    @pytest.mark.parametrize("paradigm", ["OX", "XOV", "OXII"])
    def test_leader_crash_mid_block_heals(self, paradigm, consensus, f, orderers):
        config = ScenarioConfig(
            paradigm=paradigm, seed=17, offered_load=250, duration=1.0,
            consensus=consensus, max_faulty_orderers=f, num_orderers=orderers,
        )
        outcome = run_scenario(config, crash_window("leader", 0.35, 0.8))
        assert_clean(outcome)
        # The run survives the crash: blocks ordered both before and after.
        assert outcome.blocks_ordered >= 2
        assert all(p.height == outcome.blocks_ordered for p in outcome.peers)

    def test_follower_crash_is_invisible_to_safety_and_liveness(self):
        config = ScenarioConfig(paradigm="OXII", seed=17, offered_load=250, duration=1.0)
        outcome = run_scenario(config, crash_window("orderer:1", 0.2, 0.9))
        assert_clean(outcome)


class TestConsensusProposalRetry:
    def test_crashed_leader_retries_in_flight_proposal_after_restart(self):
        """A proposal multicast while the leader was crashed is lost; the
        retry timer must re-send it after recovery instead of stalling."""
        config = ScenarioConfig(paradigm="OX", seed=23, offered_load=300, duration=1.0)
        outcome = run_scenario(config, crash_window("leader", 0.3, 0.7))
        assert_clean(outcome)
        retries = outcome.handles.orderers[0].consensus.proposal_retries
        assert retries > 0, "expected the leader to retry at least one proposal"


class TestPartitions:
    def test_xov_partition_spanning_the_endorsers(self):
        """Cut every endorser away from the gateway and orderers: endorsement
        stalls, in-flight transactions are lost pre-ordering, and after the
        heal the system resumes with all four invariants intact."""
        config = ScenarioConfig(paradigm="XOV", seed=29, offered_load=250, duration=1.0)
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.3, action="partition", groups=(("peers",),)),
            FaultEvent(at=0.7, action="heal_partition"),
        ))
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)
        assert outcome.blocks_ordered >= 1

    def test_oxii_partition_isolating_one_applications_only_agent(self):
        """With one executor per application, partitioning one agent blocks
        every cross-application chain through it; the commit-retransmit loop
        must finish those blocks after the heal."""
        config = ScenarioConfig(
            paradigm="OXII", seed=31, offered_load=250, duration=1.0,
            contention=0.5, conflict_scope="cross_application",
        )
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.25, action="partition", groups=(("peer:0",),)),
            FaultEvent(at=0.75, action="heal_partition"),
        ))
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)

    def test_partition_between_orderers_stalls_then_heals(self):
        config = ScenarioConfig(
            paradigm="OXII", seed=37, offered_load=250, duration=1.0,
            consensus="raft", max_faulty_orderers=1,
        )
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.3, action="partition", groups=(("orderer:1", "orderer:2"),)),
            FaultEvent(at=0.7, action="heal_partition"),
        ))
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)


class TestMessageAnomalies:
    def test_duplicate_commit_delivery_between_executors(self):
        """Algorithm 3 must tally one vote per executor however often the
        COMMIT is delivered — duplicates must not double-apply updates."""
        config = ScenarioConfig(
            paradigm="OXII", seed=41, offered_load=250, duration=1.0,
            contention=0.5, conflict_scope="cross_application",
        )
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.0, action="degrade_link", sender="peers", recipient="peers",
                       duplicate_probability=1.0),
            FaultEvent(at=0.9, action="heal_link", sender="peers", recipient="peers"),
        ))
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)
        assert outcome.handles.network.messages_duplicated > 0

    def test_duplicated_client_requests_are_ordered_once(self):
        """At-least-once REQUEST delivery: the orderer's dedup is what keeps
        the no-duplication oracle green."""
        config = ScenarioConfig(paradigm="OX", seed=43, offered_load=250, duration=1.0)
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.0, action="degrade_link", sender="gateway", recipient="leader",
                       duplicate_probability=1.0),
            FaultEvent(at=0.9, action="heal_link", sender="gateway", recipient="leader"),
        ))
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)
        assert outcome.requests_deduplicated > 0

    def test_reordered_consensus_traffic(self):
        """DELIVER/COMMIT notices may overtake their payload-bearing message;
        the protocols must buffer rather than decide a missing payload."""
        for consensus, f, n in (("kafka", 0, 3), ("raft", 1, 3)):
            config = ScenarioConfig(
                paradigm="OXII", seed=47, offered_load=250, duration=1.0,
                consensus=consensus, max_faulty_orderers=f, num_orderers=n,
            )
            schedule = FaultSchedule(events=(
                FaultEvent(at=0.0, action="degrade_link", sender="orderers",
                           recipient="orderers", reorder_window=0.05),
                FaultEvent(at=0.9, action="heal_link", sender="orderers",
                           recipient="orderers"),
            ))
            outcome = run_scenario(config, schedule)
            assert_clean(outcome)

    def test_lossy_delayed_link_to_an_executor(self):
        config = ScenarioConfig(paradigm="OXII", seed=53, offered_load=250, duration=1.0)
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.1, action="degrade_link", sender="leader", recipient="peer:1",
                       drop_probability=0.7, extra_delay=0.02),
            FaultEvent(at=0.7, action="heal_link", sender="leader", recipient="peer:1"),
        ))
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)


class TestDeclarativeFaultRuns:
    def test_execute_run_accepts_a_fault_section(self):
        """The spec-path integration: execute_run drives the injector from
        the same dict form a ScenarioSpec's ``faults`` section carries."""
        from repro.common.config import SystemConfig
        from repro.paradigms.run import execute_run

        metrics = execute_run(
            "OXII",
            system_config=SystemConfig().with_overrides(
                recovery={"enabled": True},
                block_cut={"max_transactions": 25, "max_delay": 0.1},
            ),
            offered_load=200,
            duration=1.0,
            drain=3.0,
            seed=61,
            faults={"events": [
                {"at": 0.3, "action": "crash", "target": "leader"},
                {"at": 0.7, "action": "restart", "target": "leader"},
            ]},
        )
        assert metrics.committed > 0

    def test_fault_example_spec_loads(self):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec.from_file("examples/specs/fault_scenarios.json")
        assert any(point.faults for point in spec.expand())


class TestExecutorCrashRestart:
    @pytest.mark.parametrize("paradigm", ["OX", "XOV", "OXII"])
    def test_peer_crash_mid_run_catches_up_after_restart(self, paradigm):
        config = ScenarioConfig(
            paradigm=paradigm, seed=59, offered_load=250, duration=1.0, contention=0.4,
        )
        outcome = run_scenario(config, crash_window("peer:1", 0.3, 0.75))
        assert_clean(outcome)
        crashed = outcome.peers[1]
        # The crashed peer missed blocks live but recovered every one of them.
        assert crashed.height == outcome.blocks_ordered
