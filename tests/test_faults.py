"""Tests for network fault injection: partitions, link faults, crashes.

The unit half exercises :class:`~repro.network.faults.FaultPlan` verdicts
directly; the integration half wires a plan into a live
:class:`~repro.network.transport.Network` and checks that messages actually
stop flowing (or arrive late) under the configured faults.
"""

from __future__ import annotations

import pytest

from repro.common.config import LatencyConfig
from repro.network import FaultPlan, Network, Topology
from repro.network.faults import LinkFault
from repro.network.message import Message
from repro.simulation import Environment


class TestLinkFaultValidation:
    def test_rejects_bad_drop_probability(self):
        with pytest.raises(ValueError, match="drop_probability"):
            LinkFault(drop_probability=1.5)
        with pytest.raises(ValueError, match="drop_probability"):
            LinkFault(drop_probability=-0.1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="extra_delay"):
            LinkFault(extra_delay=-1.0)


class TestFaultPlanVerdicts:
    def test_partition_blocks_cross_group_traffic_both_ways(self):
        plan = FaultPlan()
        plan.partition({"a", "b"}, {"c"})
        assert not plan.should_drop("a", "b")
        assert not plan.should_drop("b", "a")
        assert plan.should_drop("a", "c")
        assert plan.should_drop("c", "b")

    def test_node_outside_every_group_is_isolated(self):
        plan = FaultPlan()
        plan.partition({"a"}, {"b"})
        assert plan.should_drop("a", "ghost")
        assert plan.should_drop("ghost", "b")

    def test_heal_partition_restores_traffic(self):
        plan = FaultPlan()
        plan.partition({"a"}, {"b"})
        assert plan.should_drop("a", "b")
        plan.heal_partition()
        assert not plan.should_drop("a", "b")

    def test_repartition_replaces_previous_groups(self):
        plan = FaultPlan()
        plan.partition({"a"}, {"b", "c"})
        plan.partition({"a", "b"}, {"c"})
        assert not plan.should_drop("a", "b")
        assert plan.should_drop("b", "c")

    def test_degraded_link_drops_deterministically_per_seed(self):
        verdicts = []
        for _ in range(2):
            plan = FaultPlan(seed=99)
            plan.degrade_link("a", "b", drop_probability=0.5)
            verdicts.append([plan.should_drop("a", "b") for _ in range(50)])
        assert verdicts[0] == verdicts[1]
        assert any(verdicts[0])
        assert not all(verdicts[0])

    def test_degraded_link_is_directional(self):
        plan = FaultPlan()
        plan.degrade_link("a", "b", drop_probability=1.0)
        assert plan.should_drop("a", "b")
        assert not plan.should_drop("b", "a")

    def test_heal_link_removes_degradation(self):
        plan = FaultPlan()
        plan.degrade_link("a", "b", drop_probability=1.0, extra_delay=0.5)
        plan.heal_link("a", "b")
        assert not plan.should_drop("a", "b")
        assert plan.extra_delay("a", "b") == 0.0
        plan.heal_link("a", "b")  # healing an already-healthy link is a no-op

    def test_extra_delay_reported_only_for_faulted_link(self):
        plan = FaultPlan()
        plan.degrade_link("a", "b", extra_delay=0.25)
        assert plan.extra_delay("a", "b") == 0.25
        assert plan.extra_delay("b", "a") == 0.0

    def test_crash_and_recover(self):
        plan = FaultPlan()
        plan.crash("a")
        assert plan.is_crashed("a")
        assert plan.should_drop("a", "b")
        assert plan.should_drop("b", "a")
        plan.recover("a")
        assert not plan.should_drop("a", "b")

    def test_crash_dominates_partition_membership(self):
        plan = FaultPlan()
        plan.partition({"a", "b"})
        plan.crash("a")
        assert plan.should_drop("a", "b")


def _collect(env, interface, out):
    while True:
        envelope = yield interface.receive()
        out.append(envelope)


class TestTransportUnderFaults:
    def _network(self):
        env = Environment()
        faults = FaultPlan()
        latency = LatencyConfig(lan=0.001, jitter_fraction=0.0)
        network = Network(env, topology=Topology(latency=latency), faults=faults)
        inboxes = {}
        for name in ("a", "b", "c"):
            interface = network.register(name)
            inboxes[name] = []
            env.process(_collect(env, interface, inboxes[name]))
        return env, network, faults, inboxes

    def test_partition_blocks_delivery_until_healed(self):
        env, network, faults, inboxes = self._network()
        faults.partition({"a"}, {"b", "c"})
        network.send("a", "b", Message(kind="PING"))
        network.send("b", "c", Message(kind="PING"))
        env.run(until=0.5)
        assert inboxes["b"] == []      # cross-partition: silently dropped
        assert len(inboxes["c"]) == 1  # same partition: delivered
        faults.heal_partition()
        network.send("a", "b", Message(kind="PING"))
        env.run(until=1.0)
        assert len(inboxes["b"]) == 1

    def test_fully_degraded_link_loses_every_message(self):
        env, network, faults, inboxes = self._network()
        faults.degrade_link("a", "b", drop_probability=1.0)
        for _ in range(5):
            network.send("a", "b", Message(kind="PING"))
        network.send("b", "a", Message(kind="PING"))
        env.run(until=0.5)
        assert inboxes["b"] == []      # forward direction dead
        assert len(inboxes["a"]) == 1  # reverse direction unaffected
        assert network.messages_sent == 6
        assert network.messages_delivered == 1

    def test_link_extra_delay_shifts_arrival_time(self):
        env, network, faults, inboxes = self._network()
        faults.degrade_link("a", "b", extra_delay=0.2)
        network.send("a", "b", Message(kind="PING"))
        network.send("a", "c", Message(kind="PING"))
        env.run(until=0.5)
        (slow,) = inboxes["b"]
        (fast,) = inboxes["c"]
        assert slow.delivered_at == pytest.approx(fast.delivered_at + 0.2)

    def test_message_to_crashed_node_vanishes_in_flight(self):
        env, network, faults, inboxes = self._network()
        network.send("a", "b", Message(kind="PING"))
        faults.crash("b")  # crashes while the message is in flight
        env.run(until=0.5)
        assert inboxes["b"] == []
        faults.recover("b")
        network.send("a", "b", Message(kind="PING"))
        env.run(until=1.0)
        assert len(inboxes["b"]) == 1
