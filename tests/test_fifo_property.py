"""Property test: per-link FIFO delivery survives arbitrary mixed traffic.

The simulated transport promises that two messages sent over the same
directed link are never reordered, whatever else the fault plan does to
*other* links or (via extra delay and duplication) to this one.  A reorder
fault is the single explicit opt-out — and healing it must not leave the
transport's ``_last_delivery`` clamp corrupted by the reordered deliveries.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import LatencyConfig
from repro.network import FaultPlan, Network, Topology
from repro.network.message import Message
from repro.simulation import Environment


def _collect(env, interface, out):
    while True:
        envelope = yield interface.receive()
        out.append(envelope)


def _build(faults: FaultPlan | None = None):
    env = Environment()
    # Jitter on: FIFO must hold despite randomly drawn per-message delays.
    topology = Topology(latency=LatencyConfig(jitter_fraction=0.3))
    network = Network(env, topology=topology, faults=faults)
    interfaces = {node: network.register(node) for node in ("a", "b", "c")}
    received = []
    env.process(_collect(env, interfaces["b"], received))
    return env, network, received


#: One send: (inter-send gap in ms, payload size in bytes, from_noise_sender).
SENDS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.integers(min_value=1, max_value=4096),
        st.booleans(),
    ),
    min_size=1,
    max_size=30,
)


@st.composite
def fault_plans(draw) -> FaultPlan:
    """A fault plan that may degrade the links into ``b`` — never reordering
    the observed ``a -> b`` link (that opt-out has its own test below)."""
    plan = FaultPlan(seed=draw(st.integers(min_value=0, max_value=2**16)))
    if draw(st.booleans()):
        plan.degrade_link(
            "a", "b",
            extra_delay=draw(st.floats(min_value=0.0, max_value=0.05)),
            duplicate_probability=draw(st.sampled_from([0.0, 0.5, 1.0])),
        )
    if draw(st.booleans()):
        # Noise traffic on c -> b may even reorder; it shares the recipient
        # but not the link, so it must not perturb a -> b ordering.
        plan.degrade_link(
            "c", "b",
            extra_delay=draw(st.floats(min_value=0.0, max_value=0.05)),
            reorder_window=draw(st.sampled_from([0.0, 0.1])),
        )
    return plan


@settings(max_examples=60, deadline=None)
@given(sends=SENDS, plan=fault_plans())
def test_observed_link_is_fifo_under_mixed_traffic(sends, plan) -> None:
    env, network, received = _build(plan)
    sequence = 0
    for gap_ms, size, from_noise in sends:
        if gap_ms:
            env.timeout(gap_ms / 1000.0)
            env.run()
        if from_noise:
            network.send("c", "b", Message(kind="NOISE", body={}), payload_bytes=size)
        else:
            network.send("a", "b", Message(kind="SEQ", body={"n": sequence}), payload_bytes=size)
            sequence += 1
    env.run()
    observed = [e.message.body["n"] for e in received if e.sender == "a"]
    # Duplicates are clamped like primaries, so even with duplication the
    # sequence numbers arrive non-decreasing; deduplicated they are exact.
    assert observed == sorted(observed)
    deduplicated = sorted(set(observed))
    assert deduplicated == list(range(sequence))
    network.reconcile()


@settings(max_examples=30, deadline=None)
@given(
    reorder_window=st.floats(min_value=0.05, max_value=0.5),
    batch=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_healed_reorder_fault_leaves_fifo_clamp_intact(reorder_window, batch, seed) -> None:
    """A reorder fault must not corrupt ``_last_delivery`` for later traffic.

    Reordered deliveries deliberately bypass the FIFO clamp; if they *wrote*
    their (late) delivery times into the clamp state, every post-heal message
    would be artificially held back to the reordered maximum.  After healing,
    messages must go back to delivering at plain topology latency — far below
    the reorder window — and in FIFO order.
    """
    plan = FaultPlan(seed=seed)
    env, network, received = _build(plan)
    plan.degrade_link("a", "b", reorder_window=reorder_window)
    for n in range(batch):
        network.send("a", "b", Message(kind="SEQ", body={"n": n}))
    env.run()
    plan.heal_link("a", "b")
    healed_from = env.now
    for n in range(batch, 2 * batch):
        network.send("a", "b", Message(kind="SEQ", body={"n": n}))
    env.run()

    post_heal = [e for e in received if e.message.body["n"] >= batch]
    assert [e.message.body["n"] for e in post_heal] == list(range(batch, 2 * batch))
    # Clamp state untouched by the reordered batch: post-heal latency is the
    # plain topology delay, not the reorder window.
    lan_ceiling = network.latency.lan * (1 + network.latency.jitter_fraction) + 1e-6
    for envelope in post_heal:
        assert envelope.delivered_at - healed_from <= lan_ceiling + (
            envelope.size_bytes / network.latency.bandwidth_bytes_per_sec
        )
    network.reconcile()
