"""Tests for the dense integer-indexed DAG primitives behind DependencyGraph."""

from __future__ import annotations

import random

import pytest

from repro.core.dependency_graph import build_dependency_graph
from repro.core.graph_core import AdjacencyDAG, UnionFind, depth_histogram
from tests.conftest import make_tx


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(4)
        assert uf.groups() == [[0], [1], [2], [3]]

    def test_union_merges_and_reports(self):
        uf = UnionFind(5)
        assert uf.union(0, 3)
        assert uf.union(3, 4)
        assert not uf.union(0, 4)  # already together
        assert uf.find(0) == uf.find(4)
        assert uf.groups() == [[0, 3, 4], [1], [2]]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestAdjacencyDAG:
    def test_add_edge_validates_range_and_direction(self):
        dag = AdjacencyDAG(3)
        with pytest.raises(ValueError):
            dag.add_edge(0, 3)
        with pytest.raises(ValueError):
            dag.add_edge(2, 1)  # must point forward
        with pytest.raises(ValueError):
            dag.add_edge(1, 1)

    def test_from_incoming_matches_add_edge(self):
        incremental = AdjacencyDAG(4)
        for u, v in [(0, 2), (1, 2), (2, 3)]:
            incremental.add_edge(u, v)
        bulk = AdjacencyDAG.from_incoming([(), (), {0, 1}, [2]])
        assert bulk.edge_count == incremental.edge_count == 3
        assert bulk.roots() == incremental.roots() == [0, 1]
        assert bulk.predecessors(2) == [0, 1]
        assert bulk.longest_path_depths() == incremental.longest_path_depths()

    def test_from_incoming_rejects_forward_references(self):
        with pytest.raises(ValueError):
            AdjacencyDAG.from_incoming([(), {1}])  # 1 is not < 1
        with pytest.raises(ValueError):
            AdjacencyDAG.from_incoming([(), {-1}])

    def test_structure_queries(self):
        dag = AdjacencyDAG(5)
        dag.add_edge(0, 1)
        dag.add_edge(1, 4)
        dag.add_edge(2, 3)
        assert dag.critical_path_length() == 3  # 0 -> 1 -> 4
        assert dag.components() == [[0, 1, 4], [2, 3]]
        assert sorted(dag.edges()) == [(0, 1), (1, 4), (2, 3)]
        assert dag.in_degree(4) == 1 and dag.out_degree(0) == 1
        assert AdjacencyDAG(0).critical_path_length() == 0

    def test_kahn_matches_identity_order(self):
        """The documented invariant: with forward-only edges, releasing the
        lowest available index at each Kahn step is exactly the identity."""
        rng = random.Random(42)
        for _ in range(20):
            n = rng.randint(1, 30)
            dag = AdjacencyDAG(n)
            for v in range(1, n):
                for u in rng.sample(range(v), min(v, rng.randint(0, 3))):
                    dag.add_edge(u, v)
            assert dag.kahn_order() == list(range(n))
            assert dag.topological_order() == list(range(n))

    def test_kahn_priority_breaks_ties(self):
        dag = AdjacencyDAG(4)
        dag.add_edge(0, 3)
        # 1 and 2 are free; a reversed priority releases them before 0's chain.
        order = dag.kahn_order(priority=lambda v: -v)
        assert order.index(2) < order.index(1)
        assert order.index(0) < order.index(3)
        assert sorted(order) == [0, 1, 2, 3]

    def test_kahn_validates_dependency_graph_topology(self):
        """Cross-check: the lexicographic Kahn order of a real dependency
        graph equals block order (what DependencyGraph.topological_order
        returns without running Kahn at all)."""
        rng = random.Random(7)
        keys = [f"k{i}" for i in range(6)]
        txs = [
            make_tx(
                f"t{i}",
                reads=rng.sample(keys, 2),
                writes=rng.sample(keys, 2),
                timestamp=i + 1,
            )
            for i in range(25)
        ]
        graph = build_dependency_graph(txs)
        dag = AdjacencyDAG.from_incoming(
            [
                [graph.transaction_ids.index(p) for p in graph.predecessors(tx_id)]
                for tx_id in graph.transaction_ids
            ]
        )
        assert [graph.transaction_ids[v] for v in dag.kahn_order()] == graph.topological_order()


def test_depth_histogram():
    assert depth_histogram([]) == []
    assert depth_histogram([0, 0, 1, 2, 2, 2]) == [2, 1, 3]
