"""Property-based tests for the dependency-graph core and scheduler.

Hypothesis drives seeded random workloads through ``build_dependency_graph``
and ``CountdownScheduler`` and asserts the structural invariants the whole
execution layer relies on:

* the graph is a DAG whose edges all point forward in block order;
* an edge exists *iff* the pairwise conflict definition of Section III-A says
  so (rw/wr/ww under single-version, wr only under multi-version) — i.e. the
  per-record streaming construction is equivalent to checking every ordered
  pair;
* the countdown scheduler's waves are a valid topological stratification:
  wave k is exactly the set of transactions at dependency depth k, every
  predecessor settles in an earlier wave, and the waves partition the block.

Extends the seed-equivalence suite in ``test_scheduler_equivalence.py`` with
generative coverage (arbitrary seeds instead of a fixed dozen).
"""

from __future__ import annotations

import random
from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.dependency_graph import (
    GraphConstruction,
    GraphMode,
    StreamingGraphBuilder,
    build_dependency_graph,
    has_ordering_dependency,
)
from repro.core.execution import CountdownScheduler
from repro.core.transaction import ReadWriteSet, Transaction

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)


def random_block(seed: int, size: int) -> List[Transaction]:
    """A block whose contention level varies with the drawn key population."""
    rng = random.Random(seed)
    population = rng.choice([3, 6, 12, 40, 300])
    apps = [f"app-{i}" for i in range(rng.choice([1, 2, 3]))]
    txs = []
    for i in range(size):
        reads = {f"k{rng.randrange(population)}" for _ in range(rng.randint(0, 3))}
        writes = {f"k{rng.randrange(population)}" for _ in range(rng.randint(0, 2))}
        txs.append(
            Transaction(
                tx_id=f"tx{i}",
                application=rng.choice(apps),
                rw_set=ReadWriteSet.build(reads=reads, writes=writes),
                timestamp=i + 1,
            )
        )
    return txs


block_strategy = st.tuples(st.integers(0, 2**20), st.integers(2, 48))


@given(block_strategy)
@SETTINGS
def test_graph_is_a_forward_dag(params):
    seed, size = params
    graph = build_dependency_graph(random_block(seed, size))
    for u, v in graph.dag.edges():
        assert u < v, "every dependency edge must point forward in block order"
    # Kahn's algorithm completes without detecting a cycle and visits all nodes.
    order = graph.dag.kahn_order()
    assert sorted(order) == list(range(len(graph)))
    # For timestamp-indexed graphs the identity is the canonical topo order.
    assert order == list(range(len(graph)))


@given(block_strategy, st.sampled_from([GraphMode.SINGLE_VERSION, GraphMode.MULTI_VERSION]))
@SETTINGS
def test_every_pairwise_conflict_induces_exactly_its_edge(params, mode):
    """Streaming construction == the paper's every-ordered-pair definition."""
    seed, size = params
    txs = random_block(seed, size)
    graph = build_dependency_graph(txs, mode=mode)
    edges = {(u, v) for u, v in graph.dag.edges()}
    for i in range(len(txs)):
        for j in range(i + 1, len(txs)):
            expected = has_ordering_dependency(txs[i], txs[j], mode=mode)
            assert ((i, j) in edges) == expected, (
                f"pair ({txs[i].tx_id}, {txs[j].tx_id}) conflict={expected} "
                f"but edge={'present' if (i, j) in edges else 'absent'}"
            )


def _ancestor_bitmasks(dag) -> List[int]:
    """reach[v] = bitmask of every node with a path to v (transitive closure).

    Valid because all edges point forward in index order, so the identity is a
    topological order and predecessors are fully resolved when v is visited.
    """
    reach = [0] * dag.n
    for v in range(dag.n):
        mask = 0
        for u in dag.predecessors(v):
            mask |= reach[u] | (1 << u)
        reach[v] = mask
    return reach


@given(block_strategy, st.sampled_from([GraphMode.SINGLE_VERSION, GraphMode.MULTI_VERSION]))
@SETTINGS
def test_sparse_construction_preserves_closure_and_waves(params, mode):
    """Frontier-chain sparse graphs: same transitive closure, same waves.

    The sparse construction may only drop transitively *redundant* edges —
    every pair ordered by the all-pairs graph must stay ordered (identical
    ancestor sets), every surviving edge must be a genuine pairwise conflict,
    and the wave stratification the execution engine runs (longest-path
    depths) must be unchanged.  Under MULTI_VERSION only w→r edges exist and
    writers are mutually unreachable, so no edge is ever redundant: sparse
    must equal all-pairs edge-for-edge there.
    """
    seed, size = params
    txs = random_block(seed, size)
    dense = build_dependency_graph(txs, mode=mode)
    sparse = build_dependency_graph(txs, mode=mode, construction=GraphConstruction.SPARSE)
    dense_edges = set(dense.dag.edges())
    sparse_edges = set(sparse.dag.edges())
    assert sparse_edges <= dense_edges, "sparse construction invented a non-conflict edge"
    for u, v in sparse_edges:
        assert has_ordering_dependency(txs[u], txs[v], mode=mode)
    assert _ancestor_bitmasks(sparse.dag) == _ancestor_bitmasks(dense.dag)
    assert sparse.dag.longest_path_depths() == dense.dag.longest_path_depths()
    assert sparse.parallelism_profile() == dense.parallelism_profile()
    assert sparse.components() == dense.components()
    if mode is GraphMode.MULTI_VERSION:
        assert sparse_edges == dense_edges


@given(block_strategy, st.sampled_from([GraphConstruction.ALL_PAIRS, GraphConstruction.SPARSE]))
@SETTINGS
def test_streaming_builder_equals_batch_build(params, construction):
    """Incremental (orderer-side) construction == batch build, per construction."""
    seed, size = params
    txs = random_block(seed, size)
    builder = StreamingGraphBuilder(construction=construction)
    for tx in txs:
        builder.add(tx)
    batch = build_dependency_graph(txs, construction=construction)
    assert builder.graph().canonical_tuple() == batch.canonical_tuple()


@given(block_strategy, st.sampled_from([GraphConstruction.ALL_PAIRS, GraphConstruction.SPARSE]))
@SETTINGS
def test_wave_partition_is_the_depth_stratification(params, construction):
    """dag.wave_partition() buckets nodes exactly by longest-path depth."""
    seed, size = params
    graph = build_dependency_graph(random_block(seed, size), construction=construction)
    depths = graph.dag.longest_path_depths()
    waves = graph.dag.wave_partition()
    assert sorted(v for wave in waves for v in wave) == list(range(len(graph)))
    for k, wave in enumerate(waves):
        assert wave == sorted(wave), "waves must preserve block order"
        assert all(depths[v] == k for v in wave)


@given(block_strategy)
@SETTINGS
def test_countdown_waves_are_a_topological_stratification(params):
    seed, size = params
    graph = build_dependency_graph(random_block(seed, size))
    n = len(graph)
    scheduler = CountdownScheduler(graph, range(n))
    depths = graph.dag.longest_path_depths()
    wave_of = {}
    wave_index = 0
    while not scheduler.is_done():
        wave = scheduler.ready_indices()
        assert wave, "scheduler deadlocked on an acyclic graph"
        for v in wave:
            assert v not in wave_of, f"node {v} dispatched twice"
            wave_of[v] = wave_index
            # Every predecessor settled in a strictly earlier wave.
            for u in graph.dag.predecessors(v):
                assert wave_of[u] < wave_index
            # Waves are exactly the dependency-depth levels.
            assert depths[v] == wave_index
        for v in wave:
            scheduler.mark_executed(v)
            scheduler.mark_committed(v)
        wave_index += 1
    # The waves partition the whole block.
    assert sorted(wave_of) == list(range(n))
    assert wave_index == graph.critical_path_length() or n == 0


@given(block_strategy)
@SETTINGS
def test_partial_assignment_never_dispatches_foreign_transactions(params):
    """Only assigned indices are dispatched, and all of them eventually are."""
    seed, size = params
    graph = build_dependency_graph(random_block(seed, size))
    n = len(graph)
    rng = random.Random(seed ^ 0x5EED)
    assigned = sorted(rng.sample(range(n), k=n // 2)) if n >= 2 else []
    scheduler = CountdownScheduler(graph, assigned)
    assigned_set = set(assigned)
    dispatched = set()
    # Settle foreign transactions in block order, as remote COMMITs would.
    for v in range(n):
        for w in scheduler.ready_indices():
            assert w in assigned_set
            dispatched.add(w)
            scheduler.mark_executed(w)
        if v not in assigned_set:
            scheduler.mark_committed(v)
    for w in scheduler.ready_indices():
        assert w in assigned_set
        dispatched.add(w)
        scheduler.mark_executed(w)
    assert dispatched == assigned_set
    assert scheduler.is_done()
