"""Hot-path optimisations must be invisible in simulated results.

The end-to-end overhaul trades wall-clock work for memoisation, batching and
trust short-cuts — every one of which claims to be *behaviour-preserving*:
the same ``(spec, seed)`` must produce bit-identical metrics whether the
optimisation is on or off.  These tests pin each claim by running one
contended scenario per paradigm both ways and diffing the full summary:

* **profiling on vs off** — the phase profiler only adds wall-clock
  instrumentation (``extra["phase_times"]``), never simulated behaviour;
* **batched vs per-transaction commit loops** — a block-batched peer sleeps
  once per block but back-computes the exact per-transaction commit times;
* **replay cache on vs off** — a cacheable contract's replayed result equals
  re-execution on every replica;
* **trusted channels vs full crypto** — fault-free runs skip message
  signing/verification, whose bytes are observable nowhere.
"""

from __future__ import annotations

import pytest

from repro.common.config import BlockCutPolicy, SystemConfig
from repro.contracts.accounting import AccountingContract
from repro.crypto.signatures import KeyRegistry
from repro.nodes.base import BlockBatchMixin
from repro.paradigms.run import execute_run
from repro.workload.generator import WorkloadConfig

PARADIGMS = ("ox", "xov", "oxii")


def run_contended(paradigm: str, profile: bool = False) -> dict:
    """One small contended run; returns the full summary dict."""
    metrics = execute_run(
        paradigm,
        system_config=SystemConfig(
            block_cut=BlockCutPolicy(max_transactions=64, max_delay=0.1)
        ),
        workload_config=WorkloadConfig(seed=11, contention=0.5),
        offered_load=512,
        duration=0.5,
        drain=5.0,
        profile=profile,
    )
    return metrics.as_dict()


@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_profiling_does_not_change_results(paradigm):
    plain = run_contended(paradigm, profile=False)
    profiled = run_contended(paradigm, profile=True)
    phase_times = profiled.pop("phase_times")
    assert phase_times, "profiled run must report a phase breakdown"
    assert profiled == plain


@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_batched_delivery_matches_per_transaction_loop(paradigm, monkeypatch):
    monkeypatch.setattr(BlockBatchMixin, "batch_block_execution", True)
    batched = run_contended(paradigm)
    monkeypatch.setattr(BlockBatchMixin, "batch_block_execution", False)
    unbatched = run_contended(paradigm)
    assert batched == unbatched


@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_replay_cache_matches_reexecution(paradigm, monkeypatch):
    cached = run_contended(paradigm)
    monkeypatch.setattr(AccountingContract, "replay_cacheable", False)
    uncached = run_contended(paradigm)
    assert cached == uncached


@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_trusted_channels_match_full_crypto(paradigm, monkeypatch):
    trusted = run_contended(paradigm)
    # Disabling the trust declaration forces every message through the real
    # canonicalise+hash+HMAC sign/verify path.
    monkeypatch.setattr(KeyRegistry, "trust_channels", lambda self: None)
    full_crypto = run_contended(paradigm)
    assert trusted == full_crypto
