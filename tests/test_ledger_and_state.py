"""Tests for the ledger hash chain, the world state and the MVCC store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import LedgerError
from repro.core.block import Block
from repro.ledger import Ledger, MultiVersionStore, WorldState
from tests.conftest import make_tx


def _block_chain(lengths):
    """Build a valid chain of blocks with the given transaction counts."""
    blocks = []
    previous = Block.genesis()
    for index, count in enumerate(lengths, start=1):
        txs = [make_tx(f"b{index}-t{i}", writes=[f"k{i}"], timestamp=i + 1) for i in range(count)]
        block = Block.create(sequence=index, transactions=txs, previous_hash=previous.digest())
        blocks.append(block)
        previous = block
    return blocks


class TestLedger:
    def test_starts_with_genesis(self):
        ledger = Ledger()
        assert ledger.height == 0
        assert len(ledger) == 1

    def test_append_and_verify(self):
        ledger = Ledger()
        for block in _block_chain([2, 3, 1]):
            ledger.append(block)
        assert ledger.height == 3
        assert ledger.transaction_count() == 6
        assert ledger.verify_chain()
        assert ledger.contains_transaction("b2-t0")
        assert not ledger.contains_transaction("ghost")

    def test_rejects_wrong_sequence(self):
        ledger = Ledger()
        blocks = _block_chain([1, 1])
        with pytest.raises(LedgerError):
            ledger.append(blocks[1])  # skipping sequence 1

    def test_rejects_broken_hash_link(self):
        ledger = Ledger()
        good = _block_chain([1])[0]
        bad = Block.create(sequence=1, transactions=good.transactions, previous_hash="0" * 64)
        with pytest.raises(LedgerError):
            ledger.append(bad)

    def test_block_lookup(self):
        ledger = Ledger()
        blocks = _block_chain([1, 2])
        for block in blocks:
            ledger.append(block)
        assert ledger.block(2).sequence == 2
        with pytest.raises(LedgerError):
            ledger.block(9)

    def test_identical_appends_produce_identical_tips(self):
        """Replicas applying the same blocks end with the same tip digest."""
        blocks = _block_chain([2, 2])
        ledgers = [Ledger(), Ledger()]
        for ledger in ledgers:
            for block in blocks:
                ledger.append(block)
        assert ledgers[0].tip.digest() == ledgers[1].tip.digest()


class TestWorldState:
    def test_get_put_and_versions(self):
        state = WorldState({"a": 1})
        assert state.get("a") == 1
        assert state.version("a") == 0
        assert state.version("missing") == -1
        assert state.put("a", 2) == 1
        assert state.put("b", 10) == 0
        assert state.read("a") == (2, 1)

    def test_apply_updates_bumps_versions(self):
        state = WorldState()
        state.apply_updates({"x": 1, "y": 2})
        state.apply_updates({"x": 3})
        assert state.get("x") == 3
        assert state.version("x") == 1
        assert state.version("y") == 0

    def test_snapshot_is_immutable_view(self):
        state = WorldState({"a": 1})
        snapshot = state.snapshot()
        state.put("a", 99)
        assert snapshot["a"] == 1
        assert snapshot.version("a") == 0
        assert state.get("a") == 99
        assert snapshot.get_value("missing", "default") == "default"
        assert snapshot.read_versions(["a", "missing"]) == {"a": 0, "missing": -1}

    def test_copy_is_independent(self):
        state = WorldState({"a": 1})
        clone = state.copy()
        clone.put("a", 2)
        assert state.get("a") == 1

    def test_copy_is_independent_in_both_directions(self):
        state = WorldState({"a": 1})
        clone = state.copy()
        state.put("a", 99)
        assert clone.get("a") == 1
        assert state.get("a") == 99

    def test_successive_snapshots_freeze_distinct_states(self):
        """Copy-on-write: each snapshot keeps the state it was taken from."""
        state = WorldState({"a": 0})
        snapshots = []
        for value in (1, 2, 3):
            snapshots.append(state.snapshot())
            state.put("a", value)
        assert [s.get_value("a") for s in snapshots] == [0, 1, 2]
        assert [s.version("a") for s in snapshots] == [0, 1, 2]
        assert state.get("a") == 3

    def test_snapshot_after_batched_results(self):
        class _Result:
            def __init__(self, updates):
                self.updates = updates

        state = WorldState({"a": 1})
        before = state.snapshot()
        state.apply_results([_Result({"a": 2}), _Result({"b": 5}), _Result({})])
        assert before.get_value("a") == 1 and before.get_value("b") is None
        assert state.get("a") == 2 and state.version("a") == 1
        assert state.get("b") == 5 and state.version("b") == 0

    def test_public_snapshot_constructor_still_copies(self):
        from repro.ledger.state import StateSnapshot, VersionedValue

        data = {"a": VersionedValue(value=1, version=0)}
        snapshot = StateSnapshot(data)
        data["a"] = VersionedValue(value=9, version=1)
        assert snapshot["a"] == 1

    def test_mapping_protocol(self):
        state = WorldState({"a": 1, "b": 2})
        assert "a" in state
        assert len(state) == 2
        assert sorted(state) == ["a", "b"]
        assert state.as_dict() == {"a": 1, "b": 2}


class TestMultiVersionStore:
    def test_reads_see_correct_version(self):
        store = MultiVersionStore({"x": 0})
        store.write("x", 10, at_timestamp=5)
        store.write("x", 20, at_timestamp=9)
        assert store.read("x", 0) == (0, 0)
        assert store.read("x", 5) == (10, 5)
        assert store.read("x", 7) == (10, 5)
        assert store.read("x", 100) == (20, 9)
        assert store.latest("x") == 20

    def test_read_before_any_version(self):
        store = MultiVersionStore()
        assert store.read("x", 3) == (None, None)

    def test_out_of_order_writes_are_supported(self):
        store = MultiVersionStore()
        store.write("x", "late", at_timestamp=10)
        store.write("x", "early", at_timestamp=2)
        assert store.read("x", 5) == ("early", 2)
        assert store.read("x", 10) == ("late", 10)
        assert store.versions_of("x") == [2, 10]

    def test_idempotent_same_write(self):
        store = MultiVersionStore()
        store.write("x", 1, at_timestamp=3)
        store.write("x", 1, at_timestamp=3)
        assert store.versions_of("x") == [3]

    def test_conflicting_write_at_same_timestamp_rejected(self):
        store = MultiVersionStore()
        store.write("x", 1, at_timestamp=3)
        with pytest.raises(LedgerError):
            store.write("x", 2, at_timestamp=3)

    def test_prune_keeps_visible_version(self):
        store = MultiVersionStore()
        for ts in (1, 2, 3, 4):
            store.write("x", ts, at_timestamp=ts)
        removed = store.prune(before_timestamp=3)
        assert removed == 2
        assert store.read("x", 3) == (3, 3)
        assert store.read("x", 10) == (4, 4)

    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(0, 1000)), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_reads_always_return_newest_visible_version(self, writes):
        """Property: a read at time t sees the write with the largest timestamp <= t."""
        store = MultiVersionStore()
        reference = {}
        for timestamp, value in writes:
            if timestamp in reference:
                continue
            store.write("k", value, at_timestamp=timestamp)
            reference[timestamp] = value
        for probe in range(0, 55):
            visible = [ts for ts in reference if ts <= probe]
            expected = (reference[max(visible)], max(visible)) if visible else (None, None)
            assert store.read("k", probe) == expected
