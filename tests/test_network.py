"""Unit tests for the simulated network: topology, transport, fault injection."""

from __future__ import annotations

import pytest

from repro.common.config import LatencyConfig
from repro.common.errors import NetworkError
from repro.network import FaultPlan, Network, Topology
from repro.network.message import Message
from repro.network.topology import FAR_DC, NEAR_DC
from repro.simulation import Environment


def _receive_all(env, interface, out):
    while True:
        envelope = yield interface.receive()
        out.append(envelope)


class TestTopology:
    def test_same_dc_uses_lan_latency(self):
        latency = LatencyConfig(lan=0.001, wan=0.1, jitter_fraction=0.0)
        topo = Topology.single_datacenter(["a", "b"], latency=latency)
        assert topo.base_latency("a", "b") == pytest.approx(0.001)

    def test_cross_dc_uses_wan_latency(self):
        latency = LatencyConfig(lan=0.001, wan=0.1, jitter_fraction=0.0)
        topo = Topology.two_datacenters(["a"], ["b"], latency=latency)
        assert topo.base_latency("a", "b") == pytest.approx(0.1)
        assert topo.datacenter_of("a") == NEAR_DC
        assert topo.datacenter_of("b") == FAR_DC

    def test_self_delay_is_zero(self):
        topo = Topology.single_datacenter(["a"])
        assert topo.message_delay("a", "a") == 0.0

    def test_jitter_bounded(self):
        latency = LatencyConfig(lan=0.001, wan=0.1, jitter_fraction=0.2, bandwidth_bytes_per_sec=1e12)
        topo = Topology.single_datacenter(["a", "b"], latency=latency)
        for _ in range(100):
            delay = topo.message_delay("a", "b")
            assert 0.0008 <= delay <= 0.0012

    def test_unplaced_node_defaults_to_near(self):
        topo = Topology()
        assert topo.datacenter_of("whoever") == NEAR_DC


class TestNetworkTransport:
    def test_message_delivery(self):
        env = Environment()
        network = Network(env, topology=Topology(latency=LatencyConfig(jitter_fraction=0.0)))
        a = network.register("a")
        b = network.register("b")
        received = []
        env.process(_receive_all(env, b, received))
        a.send("b", Message(kind="PING", body={"n": 1}))
        env.run(until=1.0)
        assert len(received) == 1
        assert received[0].sender == "a"
        assert received[0].message.kind == "PING"
        assert received[0].delay == pytest.approx(LatencyConfig().lan, rel=0.2)

    def test_duplicate_registration_rejected(self):
        env = Environment()
        network = Network(env)
        network.register("a")
        with pytest.raises(NetworkError):
            network.register("a")

    def test_unknown_recipient_rejected(self):
        env = Environment()
        network = Network(env)
        network.register("a")
        with pytest.raises(NetworkError):
            network.send("a", "ghost", Message(kind="PING"))

    def test_multicast_excludes_sender(self):
        env = Environment()
        network = Network(env)
        interfaces = {name: network.register(name) for name in ["a", "b", "c"]}
        inboxes = {name: [] for name in interfaces}
        for name, interface in interfaces.items():
            env.process(_receive_all(env, interface, inboxes[name]))
        network.broadcast("a", Message(kind="HELLO"))
        env.run(until=1.0)
        assert len(inboxes["a"]) == 0
        assert len(inboxes["b"]) == 1
        assert len(inboxes["c"]) == 1

    def test_fifo_per_link(self):
        env = Environment()
        # High jitter would reorder messages without the FIFO guard.
        latency = LatencyConfig(jitter_fraction=0.9)
        network = Network(env, topology=Topology(latency=latency, seed=3))
        a = network.register("a")
        b = network.register("b")
        received = []
        env.process(_receive_all(env, b, received))

        def sender(env):
            for i in range(20):
                a.send("b", Message(kind="SEQ", body={"i": i}))
                yield env.timeout(1e-5)

        env.process(sender(env))
        env.run(until=1.0)
        order = [e.message.body["i"] for e in received]
        assert order == sorted(order)
        assert len(order) == 20

    def test_wan_delay_applied(self):
        env = Environment()
        latency = LatencyConfig(lan=0.001, wan=0.2, jitter_fraction=0.0)
        topo = Topology.two_datacenters(["near"], ["far"], latency=latency)
        network = Network(env, topology=topo)
        near = network.register("near")
        far = network.register("far")
        received = []
        env.process(_receive_all(env, far, received))
        near.send("far", Message(kind="PING"))
        env.run(until=1.0)
        assert received[0].delay >= 0.2

    def test_message_counters(self):
        env = Environment()
        network = Network(env)
        a = network.register("a")
        network.register("b")
        a.send("b", Message(kind="PING"), payload_bytes=512)
        env.run(until=1.0)
        assert network.messages_sent == 1
        assert network.messages_delivered == 1
        assert network.bytes_sent == 512


class TestFaultInjection:
    def _pair(self, faults=None):
        env = Environment()
        network = Network(env, faults=faults or FaultPlan())
        a = network.register("a")
        b = network.register("b")
        received = []
        env.process(_receive_all(env, b, received))
        return env, network, a, received

    def test_crashed_recipient_drops_messages(self):
        faults = FaultPlan()
        env, network, a, received = self._pair(faults)
        faults.crash("b")
        a.send("b", Message(kind="PING"))
        env.run(until=1.0)
        assert received == []

    def test_recovered_node_receives_again(self):
        faults = FaultPlan()
        env, network, a, received = self._pair(faults)
        faults.crash("b")
        a.send("b", Message(kind="LOST"))
        faults.recover("b")
        a.send("b", Message(kind="FOUND"))
        env.run(until=1.0)
        assert [e.message.kind for e in received] == ["FOUND"]

    def test_link_drop_probability_one_drops_everything(self):
        faults = FaultPlan()
        faults.degrade_link("a", "b", drop_probability=1.0)
        env, network, a, received = self._pair(faults)
        for _ in range(10):
            a.send("b", Message(kind="PING"))
        env.run(until=1.0)
        assert received == []

    def test_partition_blocks_cross_group_traffic(self):
        faults = FaultPlan()
        faults.partition({"a"}, {"b"})
        env, network, a, received = self._pair(faults)
        a.send("b", Message(kind="PING"))
        env.run(until=1.0)
        assert received == []
        faults.heal_partition()
        a.send("b", Message(kind="PING"))
        env.run(until=2.0)
        assert len(received) == 1

    def test_extra_delay_applied(self):
        faults = FaultPlan()
        faults.degrade_link("a", "b", extra_delay=0.5)
        env, network, a, received = self._pair(faults)
        a.send("b", Message(kind="PING"))
        env.run(until=1.0)
        assert received[0].delay >= 0.5

    def test_invalid_drop_probability(self):
        with pytest.raises(ValueError):
            FaultPlan().degrade_link("a", "b", drop_probability=1.5)
