"""Integration tests: full paradigm deployments on the simulated network.

These tests run complete OX / XOV / OXII clusters end to end on small
workloads and check the paper's correctness and behavioural claims: every
submitted transaction commits (or aborts) on every peer, replicas converge to
identical ledgers and states, asset totals are conserved, OXII never aborts
conflicting transactions while XOV does, and unauthorized clients are
rejected by the orderers' access control.
"""

from __future__ import annotations

import pytest

from repro.common.config import BlockCutPolicy, SystemConfig
from repro.contracts.accounting import AccountingContract
from repro.paradigms import OXDeployment, OXIIDeployment, XOVDeployment, run_paradigm
from repro.paradigms.run import PARADIGMS
from repro.workload.arrivals import constant_rate
from repro.workload.generator import ConflictScope, WorkloadConfig, WorkloadGenerator

FAST_CONFIG = SystemConfig(
    block_cut=BlockCutPolicy(max_transactions=10, max_bytes=1_000_000, max_delay=0.1),
)


def _workload(contention=0.0, count=40, scope=ConflictScope.WITHIN_APPLICATION, seed=5):
    generator = WorkloadGenerator(
        WorkloadConfig(contention=contention, conflict_scope=scope, seed=seed)
    )
    transactions = generator.generate(count)
    schedule = constant_rate(count, rate=400.0)
    state = generator.initial_state(transactions)
    return transactions, schedule, state


def _run(deployment_cls, contention=0.0, count=40, scope=ConflictScope.WITHIN_APPLICATION,
         config=FAST_CONFIG):
    transactions, schedule, state = _workload(contention, count, scope)
    deployment = deployment_cls(config)
    metrics = deployment.run(
        transactions=transactions,
        schedule=schedule,
        initial_state=state,
        warmup_fraction=0.0,
        drain=30.0,
    )
    return deployment, metrics, transactions, state


@pytest.mark.parametrize("deployment_cls", [OXDeployment, XOVDeployment, OXIIDeployment])
class TestAllParadigmsEndToEnd:
    def test_every_transaction_completes_everywhere(self, deployment_cls):
        deployment, metrics, transactions, _ = _run(deployment_cls, contention=0.0, count=30)
        collector = deployment.handles.collector
        assert collector.completed_count == len(transactions)
        assert metrics.committed + metrics.aborted > 0

    def test_replicas_converge_to_identical_state_and_ledger(self, deployment_cls):
        deployment, _, transactions, _ = _run(deployment_cls, contention=0.4, count=30)
        peers = deployment.handles.peers
        tips = {peer.ledger.tip.digest() for peer in peers}
        assert len(tips) == 1
        states = [peer.state.as_dict() for peer in peers]
        assert all(state == states[0] for state in states)
        # every submitted transaction is recorded in the ledger exactly once
        recorded = [tx.tx_id for block in peers[0].ledger for tx in block]
        assert sorted(recorded) == sorted(tx.tx_id for tx in transactions)
        assert peers[0].ledger.verify_chain()

    def test_total_assets_conserved(self, deployment_cls):
        deployment, _, _, initial_state = _run(deployment_cls, contention=0.5, count=30)
        initial_total = AccountingContract.total_balance(initial_state)
        for peer in deployment.handles.peers:
            assert AccountingContract.total_balance(peer.state.as_dict()) == pytest.approx(initial_total)


class TestContentionBehaviour:
    def test_oxii_commits_conflicting_transactions_without_aborts(self):
        deployment, _, transactions, _ = _run(OXIIDeployment, contention=1.0, count=30)
        collector = deployment.handles.collector
        assert collector.aborted_count == 0
        assert collector.committed_count == len(transactions)

    def test_xov_aborts_conflicting_transactions(self):
        deployment, _, transactions, _ = _run(XOVDeployment, contention=1.0, count=30)
        collector = deployment.handles.collector
        assert collector.aborted_count > 0
        assert collector.committed_count < len(transactions)

    def test_ox_is_unaffected_by_contention(self):
        deployment, _, transactions, _ = _run(OXDeployment, contention=1.0, count=30)
        collector = deployment.handles.collector
        assert collector.aborted_count == 0
        assert collector.committed_count == len(transactions)

    def test_oxii_handles_cross_application_dependencies(self):
        deployment, _, transactions, _ = _run(
            OXIIDeployment, contention=0.8, count=30, scope=ConflictScope.CROSS_APPLICATION
        )
        collector = deployment.handles.collector
        assert collector.aborted_count == 0
        assert collector.committed_count == len(transactions)
        states = [peer.state.as_dict() for peer in deployment.handles.peers]
        assert all(state == states[0] for state in states)

    def test_oxii_final_state_matches_sequential_reference(self):
        """The parallel, distributed execution equals a sequential replay."""
        deployment, _, transactions, initial_state = _run(OXIIDeployment, contention=0.6, count=30)
        # Sequential reference: replay the ledger order through the contract.
        reference = dict(initial_state)
        contract = AccountingContract("any", enforce_ownership=True)
        ledger = deployment.handles.peers[0].ledger
        for block in ledger:
            for tx in block:
                result = contract.execute(tx, reference)
                if not result.is_abort:
                    reference.update(result.updates)
        assert deployment.handles.peers[0].state.as_dict() == reference


class TestAccessControlAndConsensusVariants:
    def test_unauthorized_clients_are_rejected(self):
        transactions, schedule, state = _workload(count=10)
        deployment = OXIIDeployment(FAST_CONFIG)
        handles = deployment.build(initial_state=state)
        # Restrict every orderer to an ACL that excludes all workload clients.
        for orderer in handles.orderers:
            orderer.allowed_clients = {"someone-else"}
            orderer.start()
        for peer in handles.peers:
            peer.start()
        handles.gateway.submit_schedule(transactions, schedule)
        handles.env.run(until=5.0)
        assert handles.collector.completed_count == 0
        assert sum(o.requests_rejected for o in handles.orderers) == len(transactions)

    @pytest.mark.parametrize("protocol,orderers,faulty", [("pbft", 4, 1), ("raft", 3, 1)])
    def test_oxii_works_with_other_consensus_protocols(self, protocol, orderers, faulty):
        config = SystemConfig(
            num_orderers=orderers,
            max_faulty_orderers=faulty,
            consensus_protocol=protocol,
            block_cut=BlockCutPolicy(max_transactions=10, max_delay=0.1),
        )
        deployment, _, transactions, _ = _run(OXIIDeployment, contention=0.3, count=20, config=config)
        collector = deployment.handles.collector
        assert collector.committed_count == len(transactions)
        assert collector.aborted_count == 0


class TestRunParadigmHelper:
    def test_registry_contains_three_paradigms(self):
        assert set(PARADIGMS) == {"OX", "XOV", "OXII"}

    def test_run_paradigm_end_to_end(self):
        metrics = run_paradigm(
            "oxii",
            system_config=FAST_CONFIG,
            workload_config=WorkloadConfig(contention=0.2),
            offered_load=300,
            duration=0.5,
            drain=10.0,
        )
        assert metrics.paradigm == "OXII"
        assert metrics.throughput > 0

    def test_unknown_paradigm_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_paradigm("pow")
