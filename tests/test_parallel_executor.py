"""Tests for the real-thread dependency-graph executor.

These tests demonstrate the paper's central correctness claim with actual
concurrency: executing a block in parallel following its dependency graph
produces exactly the same state as executing it sequentially.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dependency_graph import build_dependency_graph
from repro.core.execution import ExecutionEngine
from repro.core.parallel_executor import ParallelGraphExecutor
from repro.core.transaction import TransactionResult
from tests.conftest import make_tx


def counter_runner(tx, state):
    """Increment every written key based on the value read from the snapshot."""
    updates = {}
    for key in sorted(tx.write_set):
        updates[key] = state.get(key, 0) + 1
    return TransactionResult(tx_id=tx.tx_id, application=tx.application, updates=updates)


class TestParallelGraphExecutor:
    def test_independent_transactions_run_concurrently(self):
        import time

        peak = {"value": 0}
        lock = threading.Lock()
        active = {"count": 0}

        def runner(tx, state):
            with lock:
                active["count"] += 1
                peak["value"] = max(peak["value"], active["count"])
            time.sleep(0.05)  # keep the worker busy long enough for others to start
            with lock:
                active["count"] -= 1
            return TransactionResult(tx_id=tx.tx_id, application=tx.application, updates={tx.tx_id: 1})

        txs = [make_tx(f"t{i}", writes=[f"k{i}"], timestamp=i + 1) for i in range(4)]
        executor = ParallelGraphExecutor(runner, max_workers=4)
        state = {}
        executor.execute(build_dependency_graph(txs), state)
        assert len(state) == 4
        assert peak["value"] >= 2  # at least two transactions overlapped

    def test_chain_executes_in_order(self):
        order = []
        lock = threading.Lock()

        def runner(tx, state):
            with lock:
                order.append(tx.tx_id)
            return counter_runner(tx, state)

        txs = [make_tx(f"t{i}", reads=["hot"], writes=["hot"], timestamp=i + 1) for i in range(5)]
        state = {}
        ParallelGraphExecutor(runner, max_workers=4).execute(build_dependency_graph(txs), state)
        assert order == [f"t{i}" for i in range(5)]
        assert state["hot"] == 5

    def test_matches_sequential_reference(self):
        txs = [
            make_tx("a", reads=["x"], writes=["x"], timestamp=1),
            make_tx("b", writes=["y"], timestamp=2),
            make_tx("c", reads=["x"], writes=["x", "z"], timestamp=3),
            make_tx("d", reads=["y"], writes=["y"], timestamp=4),
        ]
        sequential = ExecutionEngine(counter_runner, state={})
        sequential.execute_sequentially(txs)
        parallel_state = {}
        ParallelGraphExecutor(counter_runner, max_workers=4).execute(
            build_dependency_graph(txs), parallel_state
        )
        assert parallel_state == sequential.state

    def test_results_returned_in_block_order(self):
        txs = [make_tx(f"t{i}", writes=[f"k{i}"], timestamp=i + 1) for i in range(6)]
        results = ParallelGraphExecutor(counter_runner, max_workers=3).execute(
            build_dependency_graph(txs), {}
        )
        assert [r.tx_id for r in results] == [f"t{i}" for i in range(6)]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelGraphExecutor(counter_runner, max_workers=0)

    def test_contracts_may_scan_their_state_view(self):
        """Iterating the shared view must never race the commit loop's inserts.

        The view replaces the seed's full-dict copy per transaction; scans
        take the state lock and snapshot the keys, so a contract doing a
        whole-state aggregate cannot hit "dict changed size during
        iteration" while other transactions commit first-writes.
        """

        def scanning_runner(tx, state):
            total = sum(state.get(key, 0) for key in list(state))
            assert len(state) >= 0  # len() must also be safe mid-block
            return TransactionResult(
                tx_id=tx.tx_id, application=tx.application, updates={tx.tx_id: total + 1}
            )

        # Every transaction writes a fresh key (first-writes resize the dict)
        # and no pair conflicts, so all of them scan concurrently.
        txs = [make_tx(f"t{i}", writes=[f"t{i}"], timestamp=i + 1) for i in range(64)]
        state = {}
        results = ParallelGraphExecutor(scanning_runner, max_workers=8).execute(
            build_dependency_graph(txs), state
        )
        assert len(results) == 64
        assert not any(r.is_abort for r in results)
        assert set(state) == {f"t{i}" for i in range(64)}

    def test_raising_contract_becomes_abort_result(self):
        """A contract that raises must not abandon the rest of the block."""

        def runner(tx, state):
            if tx.tx_id == "boom":
                raise RuntimeError("contract bug")
            return counter_runner(tx, state)

        txs = [
            make_tx("a", writes=["x"], timestamp=1),
            make_tx("boom", reads=["x"], writes=["x"], timestamp=2),
            make_tx("b", reads=["x"], writes=["y"], timestamp=3),
            make_tx("c", writes=["z"], timestamp=4),
        ]
        state = {}
        results = ParallelGraphExecutor(runner, max_workers=2).execute(
            build_dependency_graph(txs), state
        )
        by_id = {r.tx_id: r for r in results}
        assert by_id["boom"].is_abort
        assert "contract bug" in by_id["boom"].abort_reason
        # Every other transaction still executed and committed.
        assert [r.tx_id for r in results] == ["a", "boom", "b", "c"]
        assert state == {"x": 1, "y": 1, "z": 1}

    def test_raising_contract_releases_dependants(self):
        """Dependants of a raising transaction are still scheduled (no stall)."""

        def runner(tx, state):
            if tx.tx_id == "t0":
                raise ValueError("broken")
            return counter_runner(tx, state)

        txs = [make_tx(f"t{i}", reads=["hot"], writes=["hot"], timestamp=i + 1) for i in range(5)]
        results = ParallelGraphExecutor(runner, max_workers=2).execute(
            build_dependency_graph(txs), {}
        )
        assert len(results) == 5
        assert results[0].is_abort
        assert all(not r.is_abort for r in results[1:])

    def test_aborts_do_not_touch_state(self):
        def runner(tx, state):
            if tx.tx_id == "bad":
                return TransactionResult.abort(tx)
            return counter_runner(tx, state)

        txs = [
            make_tx("good", writes=["a"], timestamp=1),
            make_tx("bad", writes=["b"], timestamp=2),
        ]
        state = {}
        ParallelGraphExecutor(runner, max_workers=2).execute(build_dependency_graph(txs), state)
        assert state == {"a": 1}


# -------------------------------------------------------------- property test
_keys = st.sampled_from(["k0", "k1", "k2", "k3"])


@st.composite
def _random_block(draw):
    size = draw(st.integers(min_value=1, max_value=10))
    txs = []
    for i in range(size):
        reads = draw(st.frozensets(_keys, max_size=2))
        writes = draw(st.frozensets(_keys, min_size=1, max_size=2))
        txs.append(make_tx(f"t{i}", reads=reads, writes=writes, timestamp=i + 1))
    return txs


class TestParallelEqualsSequentialProperty:
    @given(_random_block())
    @settings(max_examples=25, deadline=None)
    def test_parallel_state_equals_sequential_state(self, txs):
        """Serialisability: any graph-respecting parallel schedule == sequential."""

        def runner(tx, state):
            updates = {}
            for key in sorted(tx.write_set):
                base = sum(state.get(k, 0) for k in sorted(tx.read_set)) if tx.read_set else 0
                updates[key] = base + state.get(key, 0) + 1
            return TransactionResult(tx_id=tx.tx_id, application=tx.application, updates=updates)

        sequential = ExecutionEngine(runner, state={})
        sequential.execute_sequentially(txs)
        parallel_state = {}
        ParallelGraphExecutor(runner, max_workers=4).execute(build_dependency_graph(txs), parallel_state)
        assert parallel_state == sequential.state
