"""Unit tests for the perf-regression gate (``tools/perf_gate.py``).

The gate itself runs in the ``perf-regression`` CI job against fresh bench
rows; these tests pin its comparison semantics — tolerance math, the
``missing`` verdict for absent rows/metrics (the ``seed_skipped`` rows from
the execution benchmark must never KeyError it), trend-history merging and
the REPRO_BENCH_NO_GATE escape hatch — on synthetic data so the logic is
covered without timing anything.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "perf_gate", REPO_ROOT / "tools" / "perf_gate.py"
)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def _baselines(**overrides):
    base = {
        "tolerance": 0.2,
        "entries": [
            {
                "benchmark": "execution_scaling",
                "match": {"block_size": 4096, "contention": "high"},
                "metric": "countdown_blocks_per_s",
                "baseline": 20.0,
            }
        ],
    }
    base.update(overrides)
    return base


def _row(bps=48.5, **extra):
    row = {
        "benchmark": "execution_scaling",
        "block_size": 4096,
        "contention": "high",
        "countdown_blocks_per_s": bps,
    }
    row.update(extra)
    return row


class TestEvaluate:
    def test_value_above_floor_is_ok(self):
        findings = perf_gate.evaluate([_row(48.5)], _baselines())
        assert [f["status"] for f in findings] == [perf_gate.OK]
        assert findings[0]["floor"] == pytest.approx(16.0)

    def test_value_within_tolerance_band_is_ok(self):
        # 20% below a 20.0 baseline is exactly the floor — still passing.
        findings = perf_gate.evaluate([_row(16.0)], _baselines())
        assert findings[0]["status"] == perf_gate.OK

    def test_value_below_floor_is_regression(self):
        findings = perf_gate.evaluate([_row(15.9)], _baselines())
        assert findings[0]["status"] == perf_gate.REGRESSION

    def test_absent_row_is_missing_not_crash(self):
        findings = perf_gate.evaluate([], _baselines())
        assert findings[0]["status"] == perf_gate.MISSING
        assert findings[0]["value"] is None

    def test_absent_metric_is_missing_not_keyerror(self):
        # A row like the 4096/high seed_skipped row, but without the gated
        # metric at all: the gate reports it, it must never KeyError.
        row = {"benchmark": "execution_scaling", "block_size": 4096,
               "contention": "high", "seed_skipped": True}
        findings = perf_gate.evaluate([row], _baselines())
        assert findings[0]["status"] == perf_gate.MISSING

    def test_match_requires_every_key(self):
        row = _row()
        row["contention"] = "medium"
        findings = perf_gate.evaluate([row], _baselines())
        assert findings[0]["status"] == perf_gate.MISSING

    def test_committed_baselines_match_bench_row_schema(self):
        """Every committed entry matches a row the bench suite actually emits."""
        baselines = json.loads((REPO_ROOT / "benchmarks" / "baselines.json").read_text())
        sizes_and_profiles = {(s, p) for s in (256, 1024, 4096) for p in ("low", "medium", "high")}
        rows = [
            {"benchmark": "execution_scaling", "block_size": s, "contention": p,
             "countdown_blocks_per_s": 10**9}
            for s, p in sizes_and_profiles
        ]
        rows.append({"benchmark": "endorsement_snapshots", "cow_endorsements_per_s": 10**9})
        rows.append({"benchmark": "agent_suite", "scenario": "xov-backoff", "goodput_tps": 10**9})
        rows.append({"benchmark": "shard_scaling", "shards": 8, "throughput_tps": 10**9})
        rows.append(
            {"benchmark": "shard_spill", "shards": 4, "spill": 0.3, "throughput_tps": 10**9}
        )
        rows.extend(
            {"benchmark": "e2e_scaling", "paradigm": p, "speedup": 10**9}
            for p in ("ox", "xov", "oxii")
        )
        findings = perf_gate.evaluate(rows, baselines)
        assert all(f["status"] == perf_gate.OK for f in findings)
        assert len(findings) == 16


class TestTrend:
    def test_merge_appends_runs(self, tmp_path):
        trend = tmp_path / "trend.json"
        perf_gate.merge_trend(trend, [_row()], [])
        history = perf_gate.merge_trend(trend, [_row(50.0)], [])
        assert len(history["runs"]) == 2
        assert history["runs"][1]["rows"][0]["countdown_blocks_per_s"] == 50.0
        on_disk = json.loads(trend.read_text())
        assert len(on_disk["runs"]) == 2

    def test_corrupt_trend_restarts_history(self, tmp_path):
        trend = tmp_path / "trend.json"
        trend.write_text("{not json")
        history = perf_gate.merge_trend(trend, [_row()], [])
        assert len(history["runs"]) == 1

    def test_run_records_regression_count(self, tmp_path):
        trend = tmp_path / "trend.json"
        findings = perf_gate.evaluate([_row(1.0)], _baselines())
        history = perf_gate.merge_trend(trend, [_row(1.0)], findings)
        assert history["runs"][-1]["regressions"] == 1
        assert history["runs"][-1]["missing"] == 0

    def test_run_records_missing_separately_from_regressions(self, tmp_path):
        # A baseline entry with no matching row is a different failure mode
        # (broken/renamed benchmark) and must not inflate the regression count.
        trend = tmp_path / "trend.json"
        findings = perf_gate.evaluate([], _baselines())
        history = perf_gate.merge_trend(trend, [], findings)
        assert history["runs"][-1]["regressions"] == 0
        assert history["runs"][-1]["missing"] == 1


class TestMain:
    def _write(self, tmp_path, rows, baselines):
        results = tmp_path / "results.json"
        results.write_text(json.dumps(rows))
        base = tmp_path / "baselines.json"
        base.write_text(json.dumps(baselines))
        return results, base

    def _argv(self, results, base, tmp_path):
        return [
            "--results", str(results),
            "--baselines", str(base),
            "--trend", str(tmp_path / "trend.json"),
        ]

    def test_pass_exits_zero_and_writes_trend(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_NO_GATE", raising=False)
        results, base = self._write(tmp_path, [_row()], _baselines())
        assert perf_gate.main(self._argv(results, base, tmp_path)) == 0
        assert (tmp_path / "trend.json").exists()

    def test_regression_exits_nonzero(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_NO_GATE", raising=False)
        results, base = self._write(tmp_path, [_row(1.0)], _baselines())
        assert perf_gate.main(self._argv(results, base, tmp_path)) == 1

    def test_no_gate_env_reports_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_NO_GATE", "1")
        results, base = self._write(tmp_path, [_row(1.0)], _baselines())
        assert perf_gate.main(self._argv(results, base, tmp_path)) == 0

    def test_verdict_distinguishes_missing_from_regressed(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_BENCH_NO_GATE", raising=False)
        baselines = _baselines()
        baselines["entries"].append(
            {"benchmark": "gone_benchmark", "match": {}, "metric": "tps", "baseline": 10.0}
        )
        results, base = self._write(tmp_path, [_row(1.0)], baselines)
        assert perf_gate.main(self._argv(results, base, tmp_path)) == 1
        out = capsys.readouterr().out
        assert "1 below floor" in out
        assert "1 with no matching row/metric" in out

    def test_missing_results_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_NO_GATE", raising=False)
        base = tmp_path / "baselines.json"
        base.write_text(json.dumps(_baselines()))
        argv = self._argv(tmp_path / "nope.json", base, tmp_path)
        assert perf_gate.main(argv) == 1
        monkeypatch.setenv("REPRO_BENCH_NO_GATE", "1")
        assert perf_gate.main(argv) == 0
