"""Tests for the wall-clock environment (`repro.realnet.clock`).

The realtime environment must honour the simulated-environment contract
(processes, lean sleeps, ``until`` variants) while actually pacing against
the wall clock, accepting externally injected events, and guarding every run
with the ``max_wall`` watchdog.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import SimulationError
from repro.realnet import RealtimeEnvironment


class TestDispatchContract:
    def test_processes_run_unchanged(self) -> None:
        env = RealtimeEnvironment(speed=200.0)
        trace = []

        def worker():
            trace.append(env.now)
            yield 0.5
            trace.append(env.now)
            yield env.timeout(0.25, value="done")
            trace.append(env.now)
            return "finished"

        process = env.process(worker())
        result = env.run(until=process)
        assert result == "finished"
        assert trace == [0.0, 0.5, 0.75]
        assert env.now == 0.75

    def test_run_until_float_advances_to_horizon(self) -> None:
        env = RealtimeEnvironment(speed=500.0)
        fired = []
        env.call_at(0.2, lambda: fired.append(env.now))
        env.run(until=1.0)
        assert fired == [0.2]
        assert env.now == 1.0

    def test_run_until_none_returns_when_quiescent(self) -> None:
        env = RealtimeEnvironment(speed=500.0)
        fired = []
        env.schedule_callback(0.1, lambda: fired.append(env.now))
        env.run()
        assert fired == [0.1]

    def test_run_to_past_horizon_raises(self) -> None:
        env = RealtimeEnvironment(speed=500.0)
        env.run(until=1.0)
        with pytest.raises(SimulationError, match="already at"):
            env.run(until=0.5)

    def test_fifo_at_equal_times(self) -> None:
        env = RealtimeEnvironment(speed=500.0)
        order = []
        for label in ("first", "second", "third"):
            env.schedule_callback(0.1, lambda label=label: order.append(label))
        env.run()
        assert order == ["first", "second", "third"]


class TestPacing:
    def test_sleeps_take_real_time(self) -> None:
        env = RealtimeEnvironment(speed=10.0)
        env.schedule_callback(1.0, lambda: None)  # 1 simulated second
        start = time.monotonic()
        env.run()
        wall = time.monotonic() - start
        # At speed=10, one simulated second costs ~0.1 wall seconds.
        assert wall >= 0.08
        assert env.now == 1.0

    def test_speed_must_be_positive(self) -> None:
        with pytest.raises(SimulationError, match="speed"):
            RealtimeEnvironment(speed=0.0)

    def test_elapsed_before_run_is_current_time(self) -> None:
        env = RealtimeEnvironment()
        assert env.elapsed() == 0.0


class TestInject:
    def test_injected_callback_runs_and_wakes_dispatcher(self) -> None:
        """A thread injecting mid-run is serviced without waiting out the heap."""
        env = RealtimeEnvironment(speed=1.0, max_wall=30.0)
        seen = []
        env.schedule_callback(5.0, lambda: seen.append("horizon"))

        def late_injection():
            time.sleep(0.05)
            env.inject(lambda: seen.append(("injected", env.now)))

        process = env.process(_stop_after_injection(env, seen))
        thread = threading.Thread(target=late_injection)
        thread.start()
        env.run(until=process)
        thread.join()
        kinds = [s[0] if isinstance(s, tuple) else s for s in seen]
        assert "injected" in kinds
        # The injected event landed at the wall-clock instant, not at 5s.
        injected_at = next(s[1] for s in seen if isinstance(s, tuple))
        assert injected_at < 1.0

    def test_inject_never_rewinds_the_clock(self) -> None:
        env = RealtimeEnvironment(speed=1000.0)
        times = []
        env.schedule_callback(0.5, lambda: env.inject(lambda: times.append(env.now)))
        env.run()
        assert times and times[0] >= 0.5


def _stop_after_injection(env, seen):
    while not any(isinstance(s, tuple) for s in seen):
        yield 0.01
    return "saw-injection"


class TestWatchdog:
    def test_max_wall_raises_instead_of_hanging(self) -> None:
        env = RealtimeEnvironment(speed=1.0, max_wall=0.2)
        env.schedule_callback(3600.0, lambda: None)  # an hour of simulated time
        start = time.monotonic()
        with pytest.raises(SimulationError, match="max_wall"):
            env.run()
        assert time.monotonic() - start < 5.0

    def test_max_wall_none_disables_watchdog(self) -> None:
        env = RealtimeEnvironment(speed=1000.0, max_wall=None)
        env.schedule_callback(0.5, lambda: None)
        env.run()
        assert env.now == 0.5
