"""The sim≡prod parity suite: one scenario, both backends, equal ledgers.

For each paradigm the same smoke-scale scenario runs once on the
deterministic simulated backend and once on an asyncio backend; the oracle
(:func:`repro.realnet.assert_parity`) then asserts that everything
timing-independent matches: the committed transaction set, each
transaction's outcome, intra-run prefix agreement across peers, and — for
the single-FIFO-stream paradigms — the exact committed order.

These tests are the CI gate for the pluggable-backend tentpole: a change
that makes the real backends commit different work than the simulation is a
correctness bug in one of them, however green the rest of the suite is.
"""

from __future__ import annotations

import pickle

import pytest

from repro.network.message import Message
from repro.realnet import assert_parity
from repro.realnet.parity import run_backend_point

PARADIGMS = ("OX", "XOV", "OXII")

#: Smoke-scale point: ~10 transactions, compressed pacing.  Big enough to
#: cross block boundaries and endorsement round-trips, small enough that the
#: whole suite stays in wall-seconds.
POINT = dict(offered_load=20.0, duration=0.5, drain=20.0, seed=7, speed=25.0)


def _frames_pickle() -> bool:
    """TCP frames carry slotted frozen dataclasses — picklable on >= 3.11."""
    try:
        pickle.loads(pickle.dumps(Message(kind="PROBE", body={})))
    except Exception:
        return False
    return True


tcp_requires_pickle = pytest.mark.skipif(
    not _frames_pickle(),
    reason="TCP frames pickle slotted frozen dataclasses (requires Python >= 3.11)",
)


@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_parity_inproc(paradigm) -> None:
    report = assert_parity(paradigm, backend="asyncio", **POINT)
    assert report.ok
    # The scenario must actually exercise commits on both backends.
    assert len(report.sim.committed_sequence) > 0
    assert len(report.real.committed_sequence) > 0


@tcp_requires_pickle
@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_parity_tcp(paradigm) -> None:
    report = assert_parity(paradigm, backend="asyncio-tcp", **POINT)
    assert report.ok
    assert len(report.real.committed_sequence) > 0


def test_strict_order_defaults_by_paradigm() -> None:
    """OX/OXII compare exact sequences; XOV's order is timing-dependent."""
    ox = assert_parity("OX", backend="asyncio", **POINT)
    xov = assert_parity("XOV", backend="asyncio", **POINT)
    assert ox.strict_order is True
    assert xov.strict_order is False


def test_backend_run_captures_observables() -> None:
    run = run_backend_point("OX", "sim", **POINT)
    assert run.backend == "sim"
    assert run.committed_sequence  # the reference peer committed work
    assert set(run.outcomes) >= set(run.committed_sequence)
    # Every committed transaction has the "committed" outcome (empty reason).
    assert all(run.outcomes[tx] == "" for tx in run.committed_sequence)
    # Peer ledgers agree as prefixes of the reference sequence.
    for sequence in run.peer_sequences.values():
        assert run.committed_sequence[: len(sequence)] == sequence


def test_real_backend_reports_wall_clock() -> None:
    run = run_backend_point("OX", "asyncio", **POINT)
    assert run.metrics.extra["backend"] == "asyncio"
    assert run.metrics.extra["wall_clock_seconds"] > 0
    assert run.metrics.extra["wall_clock_throughput"] > 0
