"""Tests for the asyncio transports (`repro.realnet.transport`).

Both backends implement the same :class:`BaseTransport` contract as the
simulated network: nodes written against :class:`NetworkInterface` run
unchanged, and the conservation-law counters reconcile after every run.
The TCP backend additionally proves every message payload serialises —
frames really cross a localhost socket.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import NetworkError
from repro.network.message import Message
from repro.realnet import build_realnet


def _frames_pickle() -> bool:
    """TCP frames carry slotted frozen dataclasses — picklable on >= 3.11."""
    try:
        pickle.loads(pickle.dumps(Message(kind="PROBE", body={})))
    except Exception:
        return False
    return True


requires_tcp = pytest.mark.skipif(
    not _frames_pickle(),
    reason="TCP frames pickle slotted frozen dataclasses (requires Python >= 3.11)",
)

BACKENDS = ("asyncio", pytest.param("asyncio-tcp", marks=requires_tcp))


def _receiver(interface, out, expect):
    while len(out) < expect:
        envelope = yield interface.receive()
        out.append(envelope)
    return len(out)


def _sender(interface, recipient, count):
    for n in range(count):
        interface.send(recipient, Message(kind="SEQ", body={"n": n}))
        yield 0.001
    return count


@pytest.mark.parametrize("backend", BACKENDS)
class TestRoundTrip:
    def test_messages_cross_the_backend(self, backend) -> None:
        env, network = build_realnet(backend, speed=200.0, max_wall=30.0)
        a = network.register("a")
        b = network.register("b")
        received = []
        done = env.process(_receiver(b, received, expect=5))
        env.process(_sender(a, "b", count=5))
        assert env.run(until=done) == 5
        assert [e.message.body["n"] for e in received] == [0, 1, 2, 3, 4]
        assert all(e.sender == "a" and e.recipient == "b" for e in received)

    def test_counters_reconcile_after_run(self, backend) -> None:
        env, network = build_realnet(backend, speed=200.0, max_wall=30.0)
        a = network.register("a")
        b = network.register("b")
        received = []
        done = env.process(_receiver(b, received, expect=3))
        env.process(_sender(a, "b", count=3))
        env.run(until=done)
        counters = network.reconcile()
        assert counters["messages_sent"] == 3
        assert counters["messages_delivered"] == 3
        assert counters["messages_in_flight"] == 0
        assert counters["bytes_sent"] > 0
        assert network.idle()

    def test_multicast_skips_sender(self, backend) -> None:
        env, network = build_realnet(backend, speed=200.0, max_wall=30.0)
        interfaces = {n: network.register(n) for n in ("a", "b", "c")}
        received_b, received_c = [], []
        done_b = env.process(_receiver(interfaces["b"], received_b, expect=1))
        env.process(_receiver(interfaces["c"], received_c, expect=1))

        def fanout():
            interfaces["a"].multicast(["a", "b", "c"], Message(kind="BLOCK", body={}))
            yield 0.001

        env.process(fanout())
        env.run(until=done_b)
        assert network.messages_sent == 2  # the sender itself was skipped

    def test_unknown_recipient_raises(self, backend) -> None:
        env, network = build_realnet(backend, speed=200.0, max_wall=30.0)
        network.register("a")
        with pytest.raises(NetworkError, match="unknown recipient"):
            network.send("a", "ghost", Message(kind="PING", body={}))

    def test_faults_are_permanently_inactive(self, backend) -> None:
        _env, network = build_realnet(backend, speed=200.0)
        # Node code consults network.faults (e.g. is_crashed) unchanged; the
        # real backends carry an inactive plan rather than a missing attribute.
        assert not network.faults.any_active()
        assert not network.faults.is_crashed("a")


@requires_tcp
class TestTcpSpecifics:
    def test_bytes_sent_counts_real_frames(self) -> None:
        """TCP accounts actual wire bytes (frame + header), not model sizes."""
        env, network = build_realnet("asyncio-tcp", speed=200.0, max_wall=30.0)
        a = network.register("a")
        b = network.register("b")
        received = []
        done = env.process(_receiver(b, received, expect=1))

        def send_one():
            a.send("b", Message(kind="BULK", body={"payload": "x" * 1000}))
            yield 0.001

        env.process(send_one())
        env.run(until=done)
        # The pickled frame of a 1000-char body is necessarily larger than
        # the body itself; the simulated default would be a fixed model size.
        assert network.bytes_sent > 1000

    def test_inproc_passes_by_reference_tcp_by_value(self) -> None:
        """The TCP hop proves serialisation: the received object is a copy."""
        marker = {"shared": True}

        def run_one(backend):
            env, network = build_realnet(backend, speed=200.0, max_wall=30.0)
            a = network.register("a")
            b = network.register("b")
            received = []
            done = env.process(_receiver(b, received, expect=1))

            def send_one():
                a.send("b", Message(kind="REF", body=marker))
                yield 0.001

            env.process(send_one())
            env.run(until=done)
            return received[0].message.body

        assert run_one("asyncio") is marker
        assert run_one("asyncio-tcp") is not marker
        assert run_one("asyncio-tcp") == marker


class TestFactory:
    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(NetworkError, match="unknown realnet backend"):
            build_realnet("carrier-pigeon")

    def test_factory_returns_paced_environment(self) -> None:
        env, network = build_realnet("asyncio", speed=3.0, max_wall=7.0)
        assert env.speed == 3.0
        assert env.max_wall == 7.0
        assert network.env is env
