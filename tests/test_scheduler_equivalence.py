"""Equivalence proofs for the countdown scheduler against the seed semantics.

The seed repository scheduled Algorithm 1 by rescanning the waiting list and
rebuilding ``X_e ∪ C_e`` on every poll; this PR replaced that with the
O(V+E) indegree-countdown scheduler (:class:`repro.core.execution
.CountdownScheduler`).  These tests drive both implementations through
randomized dependency graphs, partial agent assignments and interleaved
remote commits, asserting identical wave partitions, dispatch orders, final
states and result lists — including through the sequential reference engine
the three paradigms are validated against.  The faithful seed copy lives in
:mod:`benchmarks.seed_reference`, shared with the scaling benchmark so the
equivalence proof and the perf baseline measure the same code.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from benchmarks.seed_reference import SeedGraphScheduler, seed_execute_with_graph
from repro.core.dependency_graph import build_dependency_graph
from repro.core.execution import ExecutionEngine, GraphScheduler
from repro.core.parallel_executor import ParallelGraphExecutor
from repro.core.transaction import ReadWriteSet, Transaction, TransactionResult

SEEDS = list(range(12))


def random_block(seed: int, size: int = 40) -> List[Transaction]:
    """A block with random contention (population shrinks with the seed)."""
    rng = random.Random(seed)
    population = rng.choice([4, 8, 16, 64, 400])
    apps = [f"app-{i}" for i in range(rng.choice([1, 2, 4]))]
    txs = []
    for i in range(size):
        reads = {f"r{rng.randrange(population)}" for _ in range(rng.randint(0, 3))}
        writes = {f"r{rng.randrange(population)}" for _ in range(rng.randint(0, 2))}
        txs.append(
            Transaction(
                tx_id=f"tx{i}",
                application=rng.choice(apps),
                rw_set=ReadWriteSet.build(reads=reads, writes=writes),
                timestamp=i + 1,
            )
        )
    return txs


def counter_runner(tx: Transaction, state) -> TransactionResult:
    """Deterministic contract: bump every written key by 1 + reads' sum."""
    read_sum = sum(state.get(k, 0) for k in sorted(tx.read_set))
    updates = {k: state.get(k, 0) + 1 + read_sum for k in sorted(tx.write_set)}
    return TransactionResult(tx_id=tx.tx_id, application=tx.application, updates=updates)


@pytest.mark.parametrize("seed", SEEDS)
class TestWaveEquivalence:
    def test_full_assignment_wave_partition_matches_seed(self, seed: int) -> None:
        """Executing wave by wave dispatches identical waves in identical order."""
        graph = build_dependency_graph(random_block(seed))
        ids = graph.transaction_ids
        seed_sched = SeedGraphScheduler(graph, assigned=ids)
        new_sched = GraphScheduler(graph, assigned=ids)
        waves = 0
        while not (seed_sched.is_done() and new_sched.is_done()):
            seed_wave = [t.tx_id for t in seed_sched.ready_transactions()]
            new_wave = [t.tx_id for t in new_sched.ready_transactions()]
            assert new_wave == seed_wave, f"wave {waves} diverged"
            assert seed_wave, "both schedulers deadlocked"
            for tx_id in seed_wave:
                seed_sched.mark_executed(tx_id)
                seed_sched.mark_committed(tx_id)
                new_sched.mark_executed(tx_id)
                new_sched.mark_committed(tx_id)
            waves += 1
        assert seed_sched.is_done() and new_sched.is_done()

    def test_partial_assignment_with_remote_commits(self, seed: int) -> None:
        """Two agents splitting the block release work in the same order."""
        graph = build_dependency_graph(random_block(seed))
        rng = random.Random(seed * 31 + 7)
        ids = graph.transaction_ids
        assignment = {tx_id: rng.randrange(2) for tx_id in ids}
        mine = [t for t in ids if assignment[t] == 0]
        seed_sched = SeedGraphScheduler(graph, assigned=mine)
        new_sched = GraphScheduler(graph, assigned=mine)
        remaining = list(ids)
        dispatch_log_seed: List[str] = []
        dispatch_log_new: List[str] = []
        while remaining:
            seed_ready = [t.tx_id for t in seed_sched.ready_transactions()]
            new_ready = [t.tx_id for t in new_sched.ready_transactions()]
            assert new_ready == seed_ready
            dispatch_log_seed.extend(seed_ready)
            dispatch_log_new.extend(new_ready)
            # The "other agent" commits the earliest remaining foreign tx once
            # our queue runs dry, mimicking COMMIT messages arriving.
            progressed = False
            for tx_id in seed_ready:
                seed_sched.mark_executed(tx_id)
                new_sched.mark_executed(tx_id)
                seed_sched.mark_committed(tx_id)
                new_sched.mark_committed(tx_id)
                remaining.remove(tx_id)
                progressed = True
            if not progressed:
                foreign = next(t for t in remaining if assignment[t] == 1)
                seed_sched.mark_committed(foreign)
                new_sched.mark_committed(foreign)
                remaining.remove(foreign)
            assert set(new_sched.committed) == seed_sched._committed
            assert set(new_sched.executed) == seed_sched._executed
        assert dispatch_log_new == dispatch_log_seed
        assert seed_sched.is_done() == new_sched.is_done()

    def test_blocked_on_matches_seed(self, seed: int) -> None:
        graph = build_dependency_graph(random_block(seed))
        ids = graph.transaction_ids
        seed_sched = SeedGraphScheduler(graph, assigned=ids)
        new_sched = GraphScheduler(graph, assigned=ids)
        rng = random.Random(seed)
        settled = rng.sample(ids, k=len(ids) // 3)
        for tx_id in settled:
            seed_sched.mark_committed(tx_id)
            new_sched.mark_committed(tx_id)
        for tx_id in ids:
            assert new_sched.blocked_on(tx_id) == seed_sched.blocked_on(tx_id)


@pytest.mark.parametrize("seed", SEEDS)
class TestEngineEquivalence:
    def test_results_and_state_bit_identical_to_seed_engine(self, seed: int) -> None:
        """OXII graph execution: identical result list and final state."""
        txs = random_block(seed)
        graph = build_dependency_graph(txs)
        seed_state: Dict[str, object] = {}
        new_engine = ExecutionEngine(counter_runner, state={})
        seed_results = seed_execute_with_graph(graph, counter_runner, seed_state)
        new_results = new_engine.execute_with_graph(graph)
        assert [r.canonical_tuple() for r in new_results] == [
            r.canonical_tuple() for r in seed_results
        ]
        assert new_engine.state == seed_state

    def test_graph_execution_matches_sequential_reference(self, seed: int) -> None:
        """OX (sequential) and OXII (graph) semantics agree on the final state."""
        txs = random_block(seed)
        sequential = ExecutionEngine(counter_runner, state={})
        sequential.execute_sequentially(txs)
        graphed = ExecutionEngine(counter_runner, state={})
        graphed.execute_with_graph(build_dependency_graph(txs))
        assert graphed.state == sequential.state

    def test_thread_pool_executor_matches_sequential_reference(self, seed: int) -> None:
        """XOV/OXII-style concurrent execution converges to the same state."""
        txs = random_block(seed)
        graph = build_dependency_graph(txs)
        sequential = ExecutionEngine(counter_runner, state={})
        sequential.execute_sequentially(txs)
        state: Dict[str, object] = {}
        executor = ParallelGraphExecutor(counter_runner, max_workers=4)
        results = executor.execute(graph, state)
        assert state == sequential.state
        assert len(results) == len(txs)


class TestMultiVersionWaveBatching:
    def test_same_wave_writers_commit_in_block_order(self) -> None:
        """MVCC graphs put WW pairs in one wave; the batch must keep the
        later writer's value, as the seed's per-result application did."""
        from repro.core.dependency_graph import GraphMode

        txs = [
            Transaction(tx_id="w1", application="app-0",
                        rw_set=ReadWriteSet.build(writes=["k"]), timestamp=1,
                        payload={"value": "first"}),
            Transaction(tx_id="w2", application="app-0",
                        rw_set=ReadWriteSet.build(writes=["k"]), timestamp=2,
                        payload={"value": "second"}),
        ]

        def writer(tx, state):
            return TransactionResult(
                tx_id=tx.tx_id, application=tx.application,
                updates={"k": tx.payload["value"]},
            )

        graph = build_dependency_graph(txs, mode=GraphMode.MULTI_VERSION)
        assert graph.edge_count == 0  # both writers share the first wave
        seed_state: Dict[str, object] = {}
        seed_execute_with_graph(graph, writer, seed_state)
        engine = ExecutionEngine(writer, state={})
        engine.execute_with_graph(graph)
        assert engine.state == seed_state == {"k": "second"}

    def test_negative_and_out_of_range_indices_rejected(self) -> None:
        """bytearray would silently wrap -1 to the last tx; must raise instead."""
        from repro.core.execution import CountdownScheduler

        graph = build_dependency_graph(random_block(1, size=4))
        with pytest.raises(IndexError):
            CountdownScheduler(graph, [-1])
        scheduler = CountdownScheduler(graph, range(len(graph)))
        for bad in (-1, len(graph)):
            with pytest.raises(IndexError):
                scheduler.mark_executed(bad)
            with pytest.raises(IndexError):
                scheduler.mark_committed(bad)
            with pytest.raises(IndexError):
                scheduler.is_executed(bad)


class TestFacadeViews:
    """The read-only views keep the seed API's observable behaviour."""

    def test_views_are_live_and_set_like(self) -> None:
        txs = random_block(3, size=6)
        graph = build_dependency_graph(txs)
        scheduler = GraphScheduler(graph, assigned=graph.transaction_ids)
        executed_view = scheduler.executed
        committed_view = scheduler.committed
        assert executed_view == set() and committed_view == set()
        first = scheduler.ready_transactions()[0]
        scheduler.mark_executed(first.tx_id)
        scheduler.mark_committed(first.tx_id)
        # Same objects, updated in place — no per-access copies.
        assert first.tx_id in executed_view
        assert committed_view | set() == {first.tx_id}

    def test_waiting_preserves_block_order(self) -> None:
        txs = random_block(5, size=10)
        graph = build_dependency_graph(txs)
        scheduler = GraphScheduler(graph, assigned=graph.transaction_ids)
        assert list(scheduler.waiting) == graph.transaction_ids
        for tx in scheduler.ready_transactions():
            scheduler.mark_executed(tx.tx_id)
        remaining = list(scheduler.waiting)
        assert remaining == [t for t in graph.transaction_ids if t in set(remaining)]
