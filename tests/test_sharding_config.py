"""Validation tests for the ``shards`` configuration section.

Every rejected value must produce a :class:`ConfigurationError` that names
the offending field and lists the valid choices — the error-message
convention the config layer follows everywhere else.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CONSENSUS_PROTOCOLS,
    MAX_SHARDS,
    ShardingConfig,
    SystemConfig,
)
from repro.common.errors import ConfigurationError
from repro.paradigms.run import prepare_driver
from repro.workload.generator import WorkloadConfig


class TestShardingConfigValidation:
    @pytest.mark.parametrize("bad", [0, -1, MAX_SHARDS + 1, 2.0, "2", True, None])
    def test_num_shards_must_be_an_int_in_range(self, bad):
        with pytest.raises(ConfigurationError) as err:
            ShardingConfig(num_shards=bad)
        message = str(err.value)
        assert "shards.num_shards" in message
        assert f"[1, {MAX_SHARDS}]" in message
        assert repr(bad) in message

    def test_unknown_consensus_name_lists_valid_choices(self):
        with pytest.raises(ConfigurationError) as err:
            ShardingConfig(num_shards=2, consensus="paxos")
        message = str(err.value)
        assert "shards.consensus" in message
        assert "'paxos'" in message
        for name in CONSENSUS_PROTOCOLS:
            assert name in message
        assert "'' to inherit" in message

    def test_unknown_name_inside_sequence_is_caught_too(self):
        with pytest.raises(ConfigurationError, match="shards.consensus"):
            ShardingConfig(num_shards=2, consensus=["kafka", "zab"])

    def test_consensus_sequence_length_must_match_num_shards(self):
        with pytest.raises(ConfigurationError) as err:
            ShardingConfig(num_shards=3, consensus=["kafka", "raft"])
        message = str(err.value)
        assert "shards.consensus" in message
        assert "2 protocol(s)" in message
        assert "shards.num_shards is 3" in message
        assert "one name per" in message

    def test_consensus_rejects_non_string_non_sequence(self):
        with pytest.raises(ConfigurationError, match="shards.consensus"):
            ShardingConfig(num_shards=2, consensus=42)

    def test_valid_forms_accepted(self):
        assert ShardingConfig().num_shards == 1
        assert not ShardingConfig().enabled
        assert ShardingConfig(num_shards=2).enabled
        # Lists normalise to tuples so the config stays hashable/frozen.
        cfg = ShardingConfig(num_shards=2, consensus=["kafka", "raft"])
        assert cfg.consensus == ("kafka", "raft")

    def test_consensus_for_inheritance(self):
        cfg = ShardingConfig(num_shards=3, consensus=("", "raft", "pbft"))
        assert cfg.consensus_for(0, "kafka") == "kafka"
        assert cfg.consensus_for(1, "kafka") == "raft"
        assert cfg.consensus_for(2, "kafka") == "pbft"
        single = ShardingConfig(num_shards=2, consensus="raft")
        assert single.consensus_for(0, "kafka") == "raft"
        assert single.consensus_for(1, "kafka") == "raft"

    def test_consensus_for_rejects_out_of_range_shard(self):
        cfg = ShardingConfig(num_shards=2)
        with pytest.raises(ConfigurationError, match=r"out of range \[0, 2\)"):
            cfg.consensus_for(2, "kafka")


class TestSystemConfigShardsSection:
    def test_mapping_form_is_coerced(self):
        config = SystemConfig().with_overrides(
            num_applications=4, shards={"num_shards": 2, "consensus": "raft"}
        )
        assert isinstance(config.shards, ShardingConfig)
        assert config.shards.num_shards == 2
        assert config.shards.consensus_for(1, "kafka") == "raft"

    def test_unknown_shards_field_is_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().with_overrides(shards={"shard_count": 2})

    def test_non_mapping_shards_value_is_rejected(self):
        with pytest.raises(ConfigurationError, match="shards must be a ShardingConfig"):
            SystemConfig(shards="two")

    def test_more_shards_than_applications_is_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            SystemConfig().with_overrides(num_applications=2, shards={"num_shards": 4})
        message = str(err.value)
        assert "shards.num_shards (4)" in message
        assert "num_applications (2)" in message
        assert "lower shards.num_shards or raise" in message


class TestWorkloadKeyspaceGuard:
    def test_keyspace_smaller_than_shard_count_names_both_fields(self):
        system = SystemConfig().with_overrides(
            num_applications=4, shards={"num_shards": 4}
        )
        workload = WorkloadConfig(num_applications=4).with_overrides(
            conflict={"keyspace": 3}
        )
        with pytest.raises(ConfigurationError) as err:
            prepare_driver("accounting", system, workload, 100.0, 1.0)
        message = str(err.value)
        assert "conflict.keyspace (3)" in message
        assert "shards.num_shards (4)" in message
        assert "raise conflict.keyspace or lower shards.num_shards" in message

    def test_equal_keyspace_and_shard_count_is_allowed(self):
        system = SystemConfig().with_overrides(
            num_applications=4, shards={"num_shards": 4}
        )
        workload = WorkloadConfig(num_applications=4).with_overrides(
            conflict={"keyspace": 4}
        )
        system, driver, initial_state = prepare_driver(
            "accounting", system, workload, 100.0, 1.0
        )
        assert driver is not None
