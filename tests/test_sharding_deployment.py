"""Integration tests for :class:`repro.sharding.ShardedDeployment`.

The two headline contracts:

* a 1-shard sharded deployment is **result-identical** to the plain
  per-paradigm deployment (same RunMetrics, bit for bit), and
* multi-shard deployments complete every submitted transaction, report
  per-shard and cross-shard metrics rows, and only send transactions through
  2PC when the router says they are cross-shard.
"""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.common.registry import paradigm_registry
from repro.paradigms.run import execute_run, prepare_driver
from repro.sharding import ShardedDeployment
from repro.testing import ScenarioConfig, run_all_oracles, run_scenario
from repro.workload.generator import WorkloadConfig

PARADIGMS = ("OX", "XOV", "OXII")


def run_metrics(paradigm: str, sharded: bool, num_shards: int = 1):
    """One small accounting run, via the plain or the sharded deployment."""
    system = SystemConfig().with_overrides(
        num_applications=4,
        seed=11,
        shards={"num_shards": num_shards},
        block_cut={"max_transactions": 25, "max_delay": 0.1},
    )
    workload = WorkloadConfig(num_applications=4, contention=0.2, seed=11)
    system, driver, initial_state = prepare_driver(
        "accounting", system, workload, 300.0, 1.0
    )
    cls = paradigm_registry.get(paradigm)
    deployment = ShardedDeployment(cls, system) if sharded else cls(system)
    return deployment.run(
        driver=driver,
        initial_state=initial_state,
        offered_load=300.0,
        warmup_fraction=0.2,
        drain=10.0,
    )


class TestOneShardIdentity:
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_one_shard_run_is_bit_identical_to_unsharded(self, paradigm):
        plain = run_metrics(paradigm, sharded=False)
        wrapped = run_metrics(paradigm, sharded=True, num_shards=1)
        assert wrapped.as_dict() == plain.as_dict()

    def test_one_shard_wrapper_builds_the_inner_deployment_untouched(self):
        config = SystemConfig().with_overrides(num_applications=4)
        deployment = ShardedDeployment(paradigm_registry.get("OXII"), config)
        handles = deployment.build(initial_state={})
        assert deployment.sharding_info() is None
        assert handles.extra_nodes == []
        # No shard prefix on any node: identical naming to an unsharded build.
        for node in (*handles.orderers, *handles.peers):
            assert not node.node_id.startswith("s0-")


def sharded_scenario(paradigm: str, num_shards: int = 2, **kwargs) -> ScenarioConfig:
    defaults = dict(
        paradigm=paradigm,
        seed=11,
        offered_load=300.0,
        duration=1.0,
        contention=0.0,
        system={"num_applications": 4, "shards": {"num_shards": num_shards}},
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


class TestMultiShardRuns:
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_two_shard_run_completes_and_satisfies_oracles(self, paradigm):
        outcome = run_scenario(sharded_scenario(paradigm))
        assert outcome.stable
        info = outcome.sharding
        assert info is not None and info.num_shards == 2
        assert info.coordinator.commits > 0
        assert not info.coordinator.pending
        assert run_all_oracles(outcome) == []

    def test_metrics_report_per_shard_and_cross_shard_rows(self):
        metrics = run_metrics("OX", sharded=True, num_shards=2)
        extra = metrics.extra
        assert extra["num_shards"] == 2
        assert sorted(extra["per_shard"]) == ["0", "1"]
        for row in extra["per_shard"].values():
            assert set(row) >= {"committed", "aborted", "throughput", "latency_avg"}
        cross = extra["cross_shard"]
        assert cross["submitted"] > 0
        assert cross["committed"] > 0
        # Every committed cross-shard transaction paid at least one PREPARE.
        assert cross["prepares"] >= cross["committed"]
        assert metrics.committed > 0

    def test_execute_run_routes_sharded_points(self):
        """The shared construction point: a plain execute_run call with a
        ``shards`` section builds a sharded cluster."""
        system = SystemConfig().with_overrides(
            num_applications=4, shards={"num_shards": 2}
        )
        metrics = execute_run(
            "OXII", system_config=system, offered_load=200.0, duration=1.0, seed=3
        )
        assert metrics.extra["num_shards"] == 2
        assert metrics.committed > 0

    def test_single_shard_transactions_never_enter_2pc(self):
        outcome = run_scenario(sharded_scenario("OX"))
        info = outcome.sharding
        gateway = outcome.handles.gateway
        expected_cross = sum(
            1 for tx in outcome.transactions if info.router.is_cross_shard(tx)
        )
        assert gateway.cross_shard_submitted == expected_cross
        assert info.coordinator.cross_shard_started == expected_cross
        # And the fast path really was taken for the rest.
        assert gateway.submitted == len(outcome.transactions)

    def test_shard_node_naming_and_membership(self):
        config = SystemConfig().with_overrides(
            num_applications=4, seed=5, shards={"num_shards": 2}
        )
        deployment = ShardedDeployment(paradigm_registry.get("OXII"), config)
        handles = deployment.build(initial_state={})
        info = deployment.sharding_info()
        assert sorted(info.shard_members) == [0, 1]
        seen = set()
        for shard, members in info.shard_members.items():
            prefix = f"s{shard}-"
            for node_id in members:
                assert node_id.startswith(prefix)
                assert node_id not in seen
                seen.add(node_id)
                assert info.node_shard[node_id] == shard
        assert {o.node_id for o in handles.orderers} | {
            p.node_id for p in handles.peers
        } == seen
        assert handles.extra_nodes == [info.coordinator]
        # Each shard's applications are disjoint and cover the config's.
        apps = [info.router.shard_applications(s, config.application_names()) for s in (0, 1)]
        assert sorted(apps[0] + apps[1]) == sorted(config.application_names())
        assert apps[0] and apps[1]

    def test_per_shard_consensus_heterogeneity(self):
        outcome = run_scenario(
            sharded_scenario(
                "OX",
                system={
                    "num_applications": 4,
                    "shards": {"num_shards": 2, "consensus": ["kafka", "raft"]},
                },
            )
        )
        assert outcome.stable
        info = outcome.sharding
        kinds = {
            shard: type(orderers[0].consensus).__name__
            for shard, orderers in info.shard_orderers.items()
        }
        assert kinds[0] != kinds[1], kinds
        assert run_all_oracles(outcome) == []

    def test_cross_shard_transfers_conserve_total_balance(self):
        """Money moved by cross-shard transfers must neither vanish nor be
        minted: the union of per-shard states sums to the initial total."""
        outcome = run_scenario(sharded_scenario("OXII", contention=0.3))
        info = outcome.sharding
        merged = {}
        for shard, peer_ids in info.shard_measurement_peers.items():
            merged.update(outcome.peer(peer_ids[0]).state.as_dict())
        balances = sum(
            value
            for key, value in merged.items()
            if not key.startswith("_xlock:") and isinstance(value, (int, float))
        )
        initial = sum(
            value
            for value in outcome.initial_state.values()
            if isinstance(value, (int, float))
        )
        assert balances == pytest.approx(initial)
