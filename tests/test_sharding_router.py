"""Property tests for the deterministic key/application → shard router.

Hypothesis checks the routing invariants the 2PC layer leans on: every key
maps to exactly one shard, routing is pure (no per-run or per-process state,
so it is seed-stable by construction), app-tagged keys are co-located with
their application, and a transaction takes the single-shard fast path exactly
when all of its keys live on its home shard.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.transaction import ReadWriteSet, Transaction
from repro.sharding import ShardRouter, stable_key_hash

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)

keys = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=24
)
shard_counts = st.integers(min_value=1, max_value=8)


def make_router(num_shards: int, num_apps: int = 8) -> ShardRouter:
    return ShardRouter(num_shards, [f"app-{i}" for i in range(num_apps)])


def make_tx(application: str, tx_keys) -> Transaction:
    return Transaction(
        tx_id="t-0",
        application=application,
        rw_set=ReadWriteSet.build(writes=tx_keys),
        timestamp=0,
        payload={},
        client="client-0",
    )


class TestStableHash:
    def test_pinned_values_never_drift(self):
        """Cross-version/-platform stability: these exact values are part of
        the routing contract (a drift would silently re-shard every ledger)."""
        assert stable_key_hash("account/src-0") == 10594815518926271199
        assert stable_key_hash("sb-app-3-17") == 13684577316041513892
        assert stable_key_hash("hot-global-1") == 1396981260415584275

    @SETTINGS
    @given(key=keys)
    def test_hash_is_a_pure_64_bit_function(self, key):
        assert 0 <= stable_key_hash(key) < 2**64
        assert stable_key_hash(key) == stable_key_hash(key)


class TestKeyRouting:
    @SETTINGS
    @given(key=keys, num_shards=shard_counts)
    def test_every_key_maps_to_exactly_one_shard(self, key, num_shards):
        router = make_router(num_shards)
        shard = router.shard_of_key(key)
        assert 0 <= shard < num_shards
        assert router.shard_of_key(key) == shard

    @SETTINGS
    @given(key=keys, num_shards=shard_counts, seed=st.integers(0, 1000))
    def test_routing_is_seed_and_instance_stable(self, key, num_shards, seed):
        """The router takes no seed: two independently built routers (as two
        runs with different seeds would build) agree on every key."""
        del seed  # routing must not depend on it, by construction
        assert make_router(num_shards).shard_of_key(key) == make_router(
            num_shards
        ).shard_of_key(key)

    @SETTINGS
    @given(app=st.integers(0, 7), suffix=st.integers(0, 99), num_shards=shard_counts)
    def test_app_tagged_keys_follow_their_application(self, app, suffix, num_shards):
        router = make_router(num_shards)
        for key in (f"sb-app-{app}-{suffix}", f"acct:hot-app-{app}-{suffix}"):
            assert router.shard_of_key(key) == router.shard_of_application(f"app-{app}")

    def test_applications_are_round_robin(self):
        router = make_router(3, num_apps=7)
        assert [router.shard_of_application(f"app-{i}") for i in range(7)] == [
            0, 1, 2, 0, 1, 2, 0,
        ]


class TestTransactionRouting:
    @SETTINGS
    @given(
        tx_keys=st.lists(keys, min_size=0, max_size=6),
        app=st.integers(0, 7),
        num_shards=shard_counts,
    )
    def test_participant_set_is_sorted_and_unique(self, tx_keys, app, num_shards):
        router = make_router(num_shards)
        plan = router.shards_of(make_tx(f"app-{app}", tx_keys))
        assert plan == tuple(sorted(set(plan)))
        assert plan  # never empty: keyless transactions route to their home
        assert all(0 <= shard < num_shards for shard in plan)

    @SETTINGS
    @given(
        tx_keys=st.lists(keys, min_size=0, max_size=6),
        app=st.integers(0, 7),
        num_shards=shard_counts,
    )
    def test_fast_path_iff_every_key_is_on_the_home_shard(self, tx_keys, app, num_shards):
        """``is_cross_shard`` is exactly the home-shard rule: a transaction
        avoids 2PC only when its participant set is its home shard alone."""
        router = make_router(num_shards)
        tx = make_tx(f"app-{app}", tx_keys)
        home = router.home_shard(tx)
        assert home == router.shard_of_application(tx.application)
        expected_cross = router.shards_of(tx) != (home,)
        assert router.is_cross_shard(tx) == expected_cross
        if not router.is_cross_shard(tx):
            assert all(router.shard_of_key(key) == home for key in tx_keys)

    @SETTINGS
    @given(tx_keys=st.lists(keys, min_size=0, max_size=6), app=st.integers(0, 7))
    def test_one_shard_cluster_never_goes_cross_shard(self, tx_keys, app):
        router = make_router(1)
        assert not router.is_cross_shard(make_tx(f"app-{app}", tx_keys))


class TestStatePartitioning:
    @SETTINGS
    @given(
        state_keys=st.lists(keys, min_size=0, max_size=20, unique=True),
        num_shards=shard_counts,
    )
    def test_slices_are_disjoint_and_complete(self, state_keys, num_shards):
        router = make_router(num_shards)
        state = {key: index for index, key in enumerate(state_keys)}
        slices = router.partition_state(state)
        assert len(slices) == num_shards
        merged = {}
        for shard, piece in enumerate(slices):
            for key in piece:
                assert key not in merged, "key present in two slices"
                assert router.shard_of_key(key) == shard
            merged.update(piece)
        assert merged == state

    def test_empty_and_none_states(self):
        router = make_router(4)
        assert router.partition_state(None) == [{}, {}, {}, {}]
        assert router.partition_state({}) == [{}, {}, {}, {}]
