"""Named cross-shard fault scenarios: the 2PC failure modes the paper's
atomic-commit argument has to survive.

Each test drives a sharded deployment through one concrete adversarial
schedule and requires all oracles (including cross-shard atomicity) to hold:

* the coordinator crashing between PREPARE and COMMIT (decisions must neither
  be lost nor double-applied once it restarts and retries),
* a participant shard partitioned away during the prepare phase,
* duplicated COMMIT delivery to one shard (idempotence of decision records).
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.testing import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ScenarioConfig,
    run_all_oracles,
    run_scenario,
)


def sharded_config(paradigm: str = "OXII", num_shards: int = 2, **kwargs) -> ScenarioConfig:
    defaults = dict(
        paradigm=paradigm,
        seed=11,
        offered_load=300.0,
        duration=1.0,
        contention=0.3,
        system={"num_applications": 4, "shards": {"num_shards": num_shards}},
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


def assert_clean(outcome) -> None:
    assert outcome.stable, "deployment never settled"
    violations = run_all_oracles(outcome)
    assert violations == [], "; ".join(f"{v.oracle}: {v.message}" for v in violations)


class TestCoordinatorCrashMid2PC:
    def test_crash_between_prepare_and_commit_loses_nothing(self):
        """The coordinator dies while transactions sit in the prepare phase;
        after the restart its retry loop must drive every pending 2PC to a
        decision — no lost transactions, no double-applied commits."""
        config = sharded_config("OXII")
        schedule = FaultSchedule(
            events=(
                FaultEvent(at=0.15, action="crash", target="coordinator"),
                FaultEvent(at=0.9, action="restart", target="coordinator"),
            )
        )
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)
        coordinator = outcome.sharding.coordinator
        assert coordinator.commits > 0
        assert not coordinator.pending
        # The crash really forced the recovery path: records were re-sent.
        assert coordinator.retries_sent > 0


class TestParticipantShardPartition:
    def test_partitioned_shard_during_prepare_heals_and_commits(self):
        """Shard 1 is cut off from the coordinator (and shard 0) during the
        prepare phase; once healed, retried PREPAREs must complete 2PC."""
        config = sharded_config("OX")
        schedule = FaultSchedule(
            events=(
                FaultEvent(at=0.2, action="partition", groups=(("shard:1",),)),
                FaultEvent(at=0.9, action="heal_partition"),
            )
        )
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)
        coordinator = outcome.sharding.coordinator
        assert coordinator.commits > 0
        assert coordinator.retries_sent > 0


class TestDuplicateCommitDelivery:
    def test_duplicated_decision_records_are_not_applied_twice(self):
        """Every message from the coordinator to shard 1's entry orderer is
        delivered twice; orderer dedup + decision-record idempotence must keep
        the chains single-copy (the no-duplication oracle checks this)."""
        config = sharded_config("OX")
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    at=0.1,
                    action="degrade_link",
                    sender="coordinator",
                    recipient="s1-orderer-0",
                    duplicate_probability=1.0,
                ),
                FaultEvent(
                    at=0.9, action="heal_link",
                    sender="coordinator", recipient="s1-orderer-0",
                ),
            )
        )
        outcome = run_scenario(config, schedule)
        assert_clean(outcome)
        assert outcome.requests_deduplicated > 0
        assert outcome.sharding.coordinator.commits > 0


class TestHighSpillDegradesGracefully:
    def test_thirty_percent_cross_shard_traffic_stays_safe(self):
        """At 30% conflict spill a third of smallbank transactions go through
        2PC across four shards: slower, but every oracle still holds."""
        config = sharded_config(
            "OXII",
            num_shards=4,
            generator="smallbank",
            contention=0.0,
            system={"num_applications": 8, "shards": {"num_shards": 4}},
            workload={"conflict": {"spill": 0.3}},
        )
        outcome = run_scenario(config)
        assert_clean(outcome)
        coordinator = outcome.sharding.coordinator
        assert coordinator.cross_shard_started > 0
        assert coordinator.commits > 0


class TestSpanningWorkloads:
    @pytest.mark.parametrize("generator", ("supply_chain", "agents"))
    def test_spanning_workloads_cross_shards_safely(self, generator):
        """The ISSUE's designated stress workloads: supply_chain's multi-hop
        asset chains and the closed-loop agent population both submit
        transactions whose keys span shards; they must drive real 2PC traffic
        and keep every oracle clean.  (This pairing caught a real bug: abort
        decision records without the base keys in their read set had no
        dependency edge to later transactions on those keys, so OXII executed
        them against still-locked state.)"""
        config = sharded_config("OXII", generator=generator)
        outcome = run_scenario(config)
        assert_clean(outcome)
        coordinator = outcome.sharding.coordinator
        assert coordinator.cross_shard_started > 0
        assert coordinator.commits > 0


class TestShardedDeterminism:
    def test_same_config_and_schedule_is_bit_identical(self):
        config = sharded_config("OXII")
        schedule = FaultSchedule(
            events=(
                FaultEvent(at=0.15, action="crash", target="coordinator"),
                FaultEvent(at=0.9, action="restart", target="coordinator"),
            )
        )
        first = run_scenario(config, schedule)
        second = run_scenario(config, schedule)
        assert first.fingerprint() == second.fingerprint()
        # Sharded fingerprints cover the coordinator's decision table.
        assert len(first.fingerprint()) == len(run_scenario(sharded_config("OX")).fingerprint())


class TestShardRoleErrors:
    def test_coordinator_role_needs_a_sharded_deployment(self):
        config = ScenarioConfig(paradigm="OXII", seed=3, offered_load=100.0, duration=0.5)
        schedule = FaultSchedule(
            events=(FaultEvent(at=0.1, action="crash", target="coordinator"),)
        )
        with pytest.raises(ConfigurationError, match="shards.num_shards > 1"):
            run_scenario(config, schedule)

    def test_unknown_shard_group_lists_available_ones(self):
        config = sharded_config("OX")
        schedule = FaultSchedule(
            events=(
                FaultEvent(at=0.1, action="partition", groups=(("shard:9",),)),
                FaultEvent(at=0.2, action="heal_partition"),
            )
        )
        with pytest.raises(ConfigurationError, match="unknown shard role 'shard:9'"):
            run_scenario(config, schedule)


def test_fault_injector_reuse_outside_harness():
    """The injector resolves sharded roles directly from a built deployment
    (the path execute_run's ``faults=`` argument takes)."""
    from repro.common.config import SystemConfig
    from repro.common.registry import paradigm_registry
    from repro.sharding import ShardedDeployment

    config = SystemConfig().with_overrides(num_applications=4, shards={"num_shards": 2})
    deployment = ShardedDeployment(paradigm_registry.get("OX"), config)
    handles = deployment.build(initial_state={})
    injector = FaultInjector(
        FaultSchedule(events=(FaultEvent(at=0.1, action="crash", target="coordinator"),))
    )
    injector.install(handles, deployment)
    assert injector._resolve("coordinator") == [handles.extra_nodes[0].node_id]
    assert set(injector._resolve("shard:0")) == set(deployment.shard_members[0])
