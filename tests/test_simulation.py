"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.simulation import AllOf, AnyOf, CpuPool, Resource, Store
from repro.simulation.process import Interrupt


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_timeout_advances_clock(self, env):
        def proc(env):
            yield env.timeout(2.5)
            return env.now

        process = env.process(proc(env))
        env.run()
        assert process.value == 2.5
        assert env.now == 2.5

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_timeout_at_wakes_at_exact_absolute_time(self, env):
        # 0.1 is not exactly representable: now + (when - now) drifts by an
        # ulp, which is exactly what timeout_at exists to avoid.
        target = 0.1 + 0.2  # 0.30000000000000004
        def proc(env):
            yield env.timeout(0.1)
            yield env.timeout_at(target)
            return env.now

        process = env.process(proc(env))
        env.run()
        assert process.value == target

    def test_timeout_at_rejects_past_times(self, env):
        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert env.now == 1.0
        with pytest.raises(SimulationError):
            env.timeout_at(0.5)

    def test_events_fire_in_time_order(self, env):
        order = []

        def proc(env, delay, label):
            yield env.timeout(delay)
            order.append(label)

        env.process(proc(env, 3.0, "c"))
        env.process(proc(env, 1.0, "a"))
        env.process(proc(env, 2.0, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, env):
        order = []

        def proc(env, label):
            yield env.timeout(1.0)
            order.append(label)

        for label in ["first", "second", "third"]:
            env.process(proc(env, label))
        env.run()
        assert order == ["first", "second", "third"]

    def test_run_until_time(self, env):
        ticks = []

        def ticker(env):
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(ticker(env))
        env.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return "result"

        value = env.run(until=env.process(proc(env)))
        assert value == "result"

    def test_run_until_failed_process_raises(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            env.run(until=env.process(proc(env)))

    def test_step_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestProcesses:
    def test_process_awaits_another_process(self, env):
        def child(env):
            yield env.timeout(1.0)
            return 41

        def parent(env):
            value = yield env.process(child(env))
            return value + 1

        process = env.process(parent(env))
        env.run()
        assert process.value == 42

    def test_process_requires_generator(self, env):
        def not_a_generator():
            return 1

        with pytest.raises(SimulationError):
            env.process(not_a_generator())  # type: ignore[arg-type]

    def test_yielding_non_event_fails_process(self, env):
        def proc(env):
            yield "not an event"

        process = env.process(proc(env))
        env.run()
        assert not process.ok

    def test_yielding_number_sleeps(self, env):
        """A numeric yield is a lean timeout: the process resumes after the delay."""
        marks = []

        def proc(env):
            yield 1.5
            marks.append(env.now)
            yield 2  # ints work too
            marks.append(env.now)
            return "slept"

        process = env.process(proc(env))
        value = env.run(until=process)
        assert marks == [1.5, 3.5]
        assert value == "slept"

    def test_numeric_sleep_orders_like_timeout(self, env):
        """Lean sleeps and timeout events at the same instant keep FIFO order."""
        order = []

        def lean(env):
            yield 1.0
            order.append("lean")

        def evented(env):
            yield env.timeout(1.0)
            order.append("event")

        env.process(lean(env))
        env.process(evented(env))
        env.run()
        assert order == ["lean", "event"]

    def test_negative_sleep_fails_process(self, env):
        def proc(env):
            yield -0.5

        process = env.process(proc(env))
        env.run()
        assert not process.ok

    def test_interrupt_cancels_pending_lean_sleep(self, env):
        """An interrupt during a lean sleep must not resume the process twice."""
        marks = []

        def sleeper(env):
            try:
                yield 10.0
            except Interrupt:
                marks.append(("interrupted", env.now))
            yield 5.0
            marks.append(("resumed", env.now))
            return "done"

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert marks == [("interrupted", 1.0), ("resumed", 6.0)]
        assert victim.value == "done"

    def test_interrupt_raises_inside_process(self, env):
        caught = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)
            return "done"

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert caught == ["wake up"]
        assert victim.value == "done"

    def test_exception_propagates_to_waiter(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("inner failure")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except RuntimeError as exc:
                return f"caught {exc}"

        process = env.process(waiter(env))
        env.run()
        assert process.value == "caught inner failure"


class TestConditionEvents:
    def test_all_of_collects_values(self, env):
        def proc(env):
            events = [env.timeout(1.0, value="a"), env.timeout(2.0, value="b")]
            values = yield AllOf(env, events)
            return values

        process = env.process(proc(env))
        env.run()
        assert process.value == ["a", "b"]
        assert env.now == 2.0

    def test_any_of_returns_first(self, env):
        def proc(env):
            value = yield AnyOf(env, [env.timeout(5.0, value="slow"), env.timeout(1.0, value="fast")])
            return value

        process = env.process(proc(env))
        env.run(until=process)
        assert process.value == "fast"

    def test_all_of_empty_fires_immediately(self, env):
        def proc(env):
            values = yield AllOf(env, [])
            return values

        process = env.process(proc(env))
        env.run()
        assert process.value == []


class TestResources:
    def test_resource_limits_concurrency(self, env):
        resource = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(env):
            with resource.request() as grant:
                yield grant
                active.append(1)
                peak.append(len(active))
                yield env.timeout(1.0)
                active.pop()

        for _ in range(5):
            env.process(worker(env))
        env.run()
        assert max(peak) == 2
        # 5 jobs of 1s on 2 servers take 3 seconds.
        assert env.now == pytest.approx(3.0)

    def test_resource_invalid_capacity(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_cpu_pool_parallel_speedup(self, env):
        pool = CpuPool(env, cores=4)

        def run_all(env):
            jobs = [pool.run(1.0) for _ in range(8)]
            yield AllOf(env, jobs)

        env.run(until=env.process(run_all(env)))
        # 8 jobs of 1 second across 4 cores finish in 2 simulated seconds.
        assert env.now == pytest.approx(2.0)
        assert pool.utilisation_seconds == pytest.approx(8.0)

    def test_cpu_pool_sequential_when_single_core(self, env):
        pool = CpuPool(env, cores=1)

        def run_all(env):
            yield AllOf(env, [pool.run(0.5) for _ in range(4)])

        env.run(until=env.process(run_all(env)))
        assert env.now == pytest.approx(2.0)


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("item")

        def proc(env):
            value = yield store.get()
            return value

        process = env.process(proc(env))
        env.run()
        assert process.value == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        received = []

        def consumer(env):
            value = yield store.get()
            received.append((env.now, value))

        def producer(env):
            yield env.timeout(2.0)
            store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert received == [(2.0, "late")]

    def test_fifo_order(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        assert store.get_nowait() == 0
        assert store.drain() == [1, 2]
        assert store.get_nowait() is None
