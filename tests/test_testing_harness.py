"""Unit tests for the fault-scenario harness building blocks.

Covers the schedule data model (validation, JSON round-trip, heal-time
analysis), the role language, the injector's clock-driven application, the
greedy shrinker and the repro-artifact format.  End-to-end scenario tests
live in ``test_fault_scenarios.py`` / ``test_fault_battery.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.config import SystemConfig
from repro.testing import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ScenarioConfig,
    dump_repro_artifact,
    resolve_fault_injector,
    run_scenario,
    scenario_roles,
    shrink_schedule,
)
from repro.testing.schedule import resolve_role


class TestFaultEventValidation:
    def test_rejects_unknown_action(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultEvent(at=0.0, action="meteor")

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError, match="must be >= 0"):
            FaultEvent(at=-1.0, action="crash", target="leader")

    def test_crash_needs_target(self):
        with pytest.raises(ConfigurationError, match="needs a target"):
            FaultEvent(at=0.0, action="crash")

    def test_partition_needs_groups(self):
        with pytest.raises(ConfigurationError, match="needs at least one group"):
            FaultEvent(at=0.0, action="partition")

    def test_link_actions_need_endpoints(self):
        with pytest.raises(ConfigurationError, match="sender and recipient"):
            FaultEvent(at=0.0, action="degrade_link", sender="leader")

    def test_dict_round_trip_is_compact_and_lossless(self):
        event = FaultEvent(
            at=0.5, action="degrade_link", sender="gateway", recipient="leader",
            drop_probability=0.5, reorder_window=0.01,
        )
        data = event.to_dict()
        assert "extra_delay" not in data  # neutral fields omitted
        assert FaultEvent.from_dict(data) == event

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown fault event field"):
            FaultEvent.from_dict({"at": 0.0, "action": "crash", "target": "x", "oops": 1})


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(events=(
            FaultEvent(at=1.0, action="heal_partition"),
            FaultEvent(at=0.2, action="partition", groups=(("peer:0",),)),
        ))
        assert [e.at for e in schedule.events] == [0.2, 1.0]

    def test_json_round_trip(self, tmp_path):
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.1, action="crash", target="orderer:1"),
            FaultEvent(at=0.9, action="restart", target="orderer:1"),
        ))
        path = tmp_path / "schedule.json"
        schedule.to_json(path)
        assert FaultSchedule.from_file(path) == schedule

    def test_heal_time_of_fully_healed_schedule(self):
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.1, action="crash", target="peer:0"),
            FaultEvent(at=0.4, action="restart", target="peer:0"),
            FaultEvent(at=0.2, action="partition", groups=(("peer:1",),)),
            FaultEvent(at=0.7, action="heal_partition"),
        ))
        assert schedule.heal_time() == 0.7

    def test_heal_time_infinite_when_a_fault_stays_active(self):
        schedule = FaultSchedule(events=(FaultEvent(at=0.1, action="crash", target="peer:0"),))
        assert schedule.heal_time() == float("inf")

    def test_without_removes_one_event(self):
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.1, action="crash", target="peer:0"),
            FaultEvent(at=0.4, action="restart", target="peer:0"),
        ))
        assert len(schedule.without(0)) == 1
        assert schedule.without(0).events[0].action == "restart"


class TestRoleLanguage:
    ORDERERS = ["orderer-0", "orderer-1"]
    PEERS = ["exec-0", "exec-1", "exec-2"]

    def resolve(self, role):
        return resolve_role(role, self.ORDERERS, self.PEERS, "client-gateway")

    def test_groups_and_indices(self):
        assert self.resolve("orderers") == self.ORDERERS
        assert self.resolve("peers") == self.PEERS
        assert self.resolve("executor:2") == ["exec-2"]
        assert self.resolve("orderer:1") == ["orderer-1"]
        assert self.resolve("leader") == ["orderer-0"]
        assert self.resolve("gateway") == ["client-gateway"]
        assert set(self.resolve("all")) == set(self.ORDERERS + self.PEERS + ["client-gateway"])

    def test_literal_node_id_escape_hatch(self):
        assert self.resolve("exec-1") == ["exec-1"]

    def test_out_of_range_and_unknown_roles_fail(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            self.resolve("orderer:7")
        with pytest.raises(ConfigurationError, match="unknown fault target"):
            self.resolve("mystery")

    def test_scenario_roles_follow_config(self):
        roles = scenario_roles(SystemConfig(num_applications=2, num_non_executors=1))
        assert roles["orderers"] == ["orderer:0", "orderer:1", "orderer:2"]
        assert roles["peers"] == ["peer:0", "peer:1", "peer:2"]


class TestRandomSchedules:
    def test_every_generated_fault_heals_by_heal_by(self):
        config = ScenarioConfig(seed=3)
        schedule = config.random_schedule(events=6)
        assert schedule.heal_time() <= 0.7 * config.horizon + 1e-9

    def test_resolver_accepts_all_forms(self):
        schedule = FaultSchedule(events=(FaultEvent(at=0.0, action="heal_partition"),))
        assert resolve_fault_injector(schedule, seed=1).schedule == schedule
        injector = FaultInjector(schedule)
        assert resolve_fault_injector(injector, seed=1) is injector
        from_dict = resolve_fault_injector(schedule.to_dict(), seed=1)
        assert from_dict.schedule == schedule
        generated = resolve_fault_injector(
            {"random": {"events": 2, "horizon": 1.0}}, seed=1, system_config=SystemConfig()
        )
        assert len(generated.schedule) == 4  # two arcs, fault + heal each

    def test_resolver_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            resolve_fault_injector(42, seed=1)


class TestInjectorApplication:
    def test_events_fire_at_their_scheduled_times(self):
        config = ScenarioConfig(paradigm="OX", seed=2, offered_load=150, duration=0.6)
        schedule = FaultSchedule(events=(
            FaultEvent(at=0.2, action="crash", target="peer:0"),
            FaultEvent(at=0.5, action="restart", target="peer:0"),
        ))
        outcome = run_scenario(config, schedule)
        assert outcome.injector.applied[0] == (0.2, "crash")
        assert outcome.injector.applied[1] == (0.5, "restart")
        assert outcome.injector.affected_nodes == {outcome.peers[0].node_id}
        crashed_peer = outcome.handles.peers[0]
        assert crashed_peer.crash_count == 1 and crashed_peer.restart_count == 1


class TestShrinker:
    @staticmethod
    def _schedule(n):
        events = []
        for i in range(n):
            events.append(FaultEvent(at=0.1 * (i + 1), action="crash", target=f"peer:{i}"))
            events.append(FaultEvent(at=0.1 * (i + 1) + 0.05, action="restart", target=f"peer:{i}"))
        return FaultSchedule(events=tuple(events))

    def test_shrinks_to_the_minimal_failing_core(self):
        # "Fails" iff the schedule still crashes peer:1 — the shrinker must
        # strip everything else and keep exactly that one event.
        def fails(schedule):
            return any(e.action == "crash" and e.target == "peer:1" for e in schedule.events)

        small = shrink_schedule(self._schedule(3), fails)
        assert len(small) == 1
        assert small.events[0].target == "peer:1"

    def test_requires_an_initially_failing_schedule(self):
        with pytest.raises(ValueError, match="currently fails"):
            shrink_schedule(self._schedule(1), lambda s: False)

    def test_respects_the_attempt_budget(self):
        calls = []

        def fails(schedule):
            calls.append(1)
            return True

        shrink_schedule(self._schedule(4), fails, max_attempts=3)
        # 1 initial check + at most 3 shrink attempts.
        assert len(calls) <= 4


class TestReproArtifacts:
    def test_artifact_is_replayable_json(self, tmp_path):
        config = ScenarioConfig(paradigm="OXII", seed=7)
        schedule = FaultSchedule(events=(FaultEvent(at=0.3, action="crash", target="leader"),))
        path = dump_repro_artifact(
            tmp_path / "repro.json", config, schedule,
            violations=[], extra={"note": "unit test"},
        )
        payload = json.loads(path.read_text())
        assert payload["artifact_schema_version"] == 1
        assert payload["scenario"]["paradigm"] == "OXII"
        assert FaultSchedule.from_dict(payload["schedule"]) == schedule
        assert payload["note"] == "unit test"
