"""Unit tests for transactions, read/write sets and results."""

from __future__ import annotations

import pytest

from repro.common.errors import TransactionError
from repro.core.transaction import (
    Operation,
    OperationType,
    ReadWriteSet,
    Transaction,
    TransactionResult,
    summarize_applications,
    validate_block_timestamps,
)
from tests.conftest import make_tx


class TestReadWriteSet:
    def test_build_normalises_iterables(self):
        rw = ReadWriteSet.build(reads=["a", "a", "b"], writes=("b",))
        assert rw.reads == frozenset({"a", "b"})
        assert rw.writes == frozenset({"b"})
        assert rw.keys == frozenset({"a", "b"})

    def test_read_only(self):
        assert ReadWriteSet.build(reads=["x"]).is_read_only()
        assert not ReadWriteSet.build(writes=["x"]).is_read_only()

    def test_sorted_keys_is_memoised_and_sorted(self):
        rw = ReadWriteSet.build(reads=["b", "a"], writes=["c", "a"])
        first = rw.sorted_keys()
        assert first == ("a", "b", "c")
        assert rw.sorted_keys() is first  # memoised on the hot path


class TestTransaction:
    def test_requires_id_and_application(self):
        with pytest.raises(TransactionError):
            make_tx("", reads=["a"])
        with pytest.raises(TransactionError):
            Transaction(tx_id="t", application="", rw_set=ReadWriteSet())

    def test_paper_notation_properties(self):
        tx = make_tx("t1", reads=["1001"], writes=["1001", "1002"])
        assert tx.read_set == frozenset({"1001"})
        assert tx.write_set == frozenset({"1001", "1002"})

    def test_with_timestamp_preserves_everything_else(self):
        tx = make_tx("t1", reads=["a"], writes=["b"], client="alice")
        stamped = tx.with_timestamp(7)
        assert stamped.timestamp == 7
        assert stamped.tx_id == tx.tx_id
        assert stamped.client == "alice"
        assert stamped.rw_set == tx.rw_set

    def test_digest_is_stable_and_distinct(self):
        tx1 = make_tx("t1", reads=["a"])
        tx2 = make_tx("t2", reads=["a"])
        assert tx1.digest() == make_tx("t1", reads=["a"]).digest()
        assert tx1.digest() != tx2.digest()

    def test_digest_changes_with_timestamp(self):
        tx = make_tx("t1", reads=["a"])
        assert tx.digest() != tx.with_timestamp(5).digest()

    def test_operations_cover_reads_and_writes(self):
        tx = make_tx("t1", reads=["a"], writes=["b", "c"])
        ops = tx.operations()
        assert Operation(OperationType.READ, "a") in ops
        assert Operation(OperationType.WRITE, "b") in ops
        assert len(ops) == 3


class TestTransactionResult:
    def test_abort_helper(self):
        tx = make_tx("t1", writes=["x"])
        result = TransactionResult.abort(tx, executed_by="e1")
        assert result.is_abort
        assert result.updates == {}
        assert result.tx_id == "t1"

    def test_matches_ignores_executor(self):
        a = TransactionResult(tx_id="t", application="app-0", updates={"x": 1}, executed_by="e1")
        b = TransactionResult(tx_id="t", application="app-0", updates={"x": 1}, executed_by="e2")
        c = TransactionResult(tx_id="t", application="app-0", updates={"x": 2}, executed_by="e3")
        assert a.matches(b)
        assert not a.matches(c)

    def test_matches_requires_same_status(self):
        tx = make_tx("t1", writes=["x"])
        ok = TransactionResult(tx_id="t1", application="app-0", updates={})
        assert not ok.matches(TransactionResult.abort(tx))


class TestBlockHelpers:
    def test_validate_block_timestamps_accepts_increasing(self):
        txs = [make_tx(f"t{i}", timestamp=i + 1) for i in range(5)]
        validate_block_timestamps(txs)

    def test_validate_block_timestamps_rejects_duplicates(self):
        txs = [make_tx("t1", timestamp=1), make_tx("t2", timestamp=1)]
        with pytest.raises(TransactionError):
            validate_block_timestamps(txs)

    def test_summarize_applications(self):
        txs = [
            make_tx("t1", application="app-0"),
            make_tx("t2", application="app-1"),
            make_tx("t3", application="app-0"),
        ]
        assert summarize_applications(txs) == {"app-0": 2, "app-1": 1}
