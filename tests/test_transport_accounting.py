"""Regression tests for the transport conservation-law accounting.

The transport used to count dropped messages as sent and silently discard
envelopes whose recipient crashed mid-flight, so ``messages_sent`` could
never be reconciled against ``messages_delivered`` under faults.  Every
backend now keeps the identity

    sent + duplicated == delivered + dropped + discarded_crash + in_flight

at every instant; :meth:`BaseTransport.reconcile` asserts it and the fault
harness calls it after every scenario.
"""

from __future__ import annotations

import pytest

from repro.common.config import LatencyConfig
from repro.common.errors import NetworkError
from repro.network import FaultPlan, Network, Topology
from repro.network.message import Message
from repro.paradigms.run import execute_run
from repro.simulation import Environment


def _network(env: Environment, faults: FaultPlan | None = None) -> Network:
    topology = Topology(latency=LatencyConfig(jitter_fraction=0.0))
    network = Network(env, topology=topology, faults=faults)
    for node in ("a", "b", "c"):
        network.register(node)
    return network


def _ping(n: int = 0) -> Message:
    return Message(kind="PING", body={"n": n})


class TestConservationIdentity:
    def test_fault_free_sent_equals_delivered(self) -> None:
        env = Environment()
        network = _network(env)
        for i in range(5):
            network.send("a", "b", _ping(i))
        env.run()
        counters = network.reconcile()
        assert counters["messages_sent"] == 5
        assert counters["messages_delivered"] == 5
        assert counters["messages_in_flight"] == 0
        assert counters["messages_dropped"] == 0
        assert counters["messages_discarded_crash"] == 0

    def test_in_flight_counted_before_delivery(self) -> None:
        env = Environment()
        network = _network(env)
        network.send("a", "b", _ping())
        # Not yet delivered: the message is in flight, and the identity
        # already reconciles mid-transfer.
        counters = network.reconcile()
        assert counters["messages_sent"] == 1
        assert counters["messages_in_flight"] == 1
        assert counters["messages_delivered"] == 0
        env.run()
        assert network.reconcile()["messages_in_flight"] == 0

    def test_dropped_sends_are_counted_not_delivered(self) -> None:
        faults = FaultPlan()
        faults.degrade_link("a", "b", drop_probability=1.0)
        env = Environment()
        network = _network(env, faults)
        for i in range(4):
            network.send("a", "b", _ping(i))
        network.send("a", "c", _ping())  # healthy link, control
        env.run()
        counters = network.reconcile()
        assert counters["messages_sent"] == 5
        assert counters["messages_dropped"] == 4
        assert counters["messages_delivered"] == 1
        # The sender still paid the wire cost of the dropped sends.
        assert counters["bytes_sent"] == 5 * network.latency.per_message_bytes

    def test_send_to_already_crashed_recipient_is_a_drop(self) -> None:
        faults = FaultPlan()
        faults.crash("b")
        env = Environment()
        network = _network(env, faults)
        network.send("a", "b", _ping())
        env.run()
        counters = network.reconcile()
        assert counters["messages_dropped"] == 1
        assert counters["messages_discarded_crash"] == 0

    def test_crash_while_in_flight_is_a_discard(self) -> None:
        env = Environment()
        network = _network(env)
        network.send("a", "b", _ping())
        # Crash after the send was scheduled but before its delivery time.
        network.faults.crash("b")
        env.run()
        counters = network.reconcile()
        assert counters["messages_sent"] == 1
        assert counters["messages_discarded_crash"] == 1
        assert counters["messages_delivered"] == 0
        assert network.interface("b").pending() == 0

    def test_duplicates_balance_as_extra_production(self) -> None:
        faults = FaultPlan()
        faults.degrade_link("a", "b", duplicate_probability=1.0)
        env = Environment()
        network = _network(env, faults)
        for i in range(3):
            network.send("a", "b", _ping(i))
        env.run()
        counters = network.reconcile()
        assert counters["messages_sent"] == 3
        assert counters["messages_duplicated"] == 3
        assert counters["messages_delivered"] == 6

    def test_reconcile_raises_on_violation(self) -> None:
        env = Environment()
        network = _network(env)
        network.send("a", "b", _ping())
        env.run()
        network.messages_delivered += 1  # simulate an invented message
        with pytest.raises(NetworkError, match="identity violated"):
            network.reconcile()


class TestCountersSurfaceInMetrics:
    def test_fault_run_exposes_transport_counters(self) -> None:
        """A fault run carries the reconciled counters in ``extra``."""
        # Crash the entry orderer mid-submission: client traffic addressed to
        # it while it is down is dropped at the send, so the drop counters are
        # guaranteed to move.
        faults = {
            "events": [
                {"at": 0.05, "action": "crash", "target": "leader"},
                {"at": 0.3, "action": "restart", "target": "leader"},
            ]
        }
        metrics = execute_run(
            "OX",
            offered_load=60.0,
            duration=0.4,
            drain=5.0,
            seed=3,
            faults=faults,
        )
        transport = metrics.extra["transport"]
        produced = transport["messages_sent"] + transport["messages_duplicated"]
        resolved = (
            transport["messages_delivered"]
            + transport["messages_dropped"]
            + transport["messages_discarded_crash"]
            + transport["messages_in_flight"]
        )
        assert produced == resolved
        # The crash window makes at least one message undeliverable.
        assert transport["messages_dropped"] + transport["messages_discarded_crash"] > 0

    def test_fault_free_run_keeps_extra_lean(self) -> None:
        """No fault schedule → no transport block (sim rows stay bit-identical)."""
        metrics = execute_run("OX", offered_load=60.0, duration=0.4, drain=5.0, seed=3)
        assert "transport" not in metrics.extra
