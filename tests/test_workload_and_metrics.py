"""Tests for the workload generator, arrival schedules and metrics collection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.core.dependency_graph import build_dependency_graph
from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencyStats, percentile
from repro.metrics.saturation import sweep_offered_load
from repro.metrics.collector import RunMetrics
from repro.workload import (
    ConflictScope,
    WorkloadConfig,
    WorkloadGenerator,
    ZipfianSampler,
    constant_rate,
    poisson_rate,
)


class TestWorkloadGenerator:
    def _graph_for(self, config, count=50):
        generator = WorkloadGenerator(config)
        txs = [tx.with_timestamp(i + 1) for i, tx in enumerate(generator.generate(count))]
        return build_dependency_graph(txs), txs, generator

    def test_no_contention_produces_no_edges(self):
        graph, txs, _ = self._graph_for(WorkloadConfig(contention=0.0))
        assert graph.edge_count == 0

    def test_full_contention_produces_a_chain(self):
        graph, txs, _ = self._graph_for(WorkloadConfig(contention=1.0))
        assert graph.is_chain()
        assert graph.critical_path_length() == len(txs)

    def test_partial_contention_is_between_extremes(self):
        graph, txs, _ = self._graph_for(WorkloadConfig(contention=0.5, seed=11), count=100)
        assert 0 < graph.edge_count
        assert 1 < graph.critical_path_length() < len(txs)
        # Roughly half of the transactions should be involved in conflicts.
        assert 0.3 <= graph.degree_of_contention() <= 0.7

    def test_within_application_scope_keeps_conflicts_in_one_application(self):
        graph, txs, _ = self._graph_for(
            WorkloadConfig(contention=0.6, conflict_scope=ConflictScope.WITHIN_APPLICATION)
        )
        assert not graph.has_cross_application_dependency()

    def test_cross_application_scope_creates_cross_application_edges(self):
        graph, txs, _ = self._graph_for(
            WorkloadConfig(contention=0.6, conflict_scope=ConflictScope.CROSS_APPLICATION)
        )
        assert graph.has_cross_application_dependency()

    def test_initial_state_covers_every_account(self):
        config = WorkloadConfig(contention=0.3)
        generator = WorkloadGenerator(config)
        txs = generator.generate(40)
        state = generator.initial_state(txs)
        for tx in txs:
            for leg in tx.payload["transfers"]:
                assert f"account/{leg['source']}" in state
                assert f"account/{leg['destination']}" in state

    def test_source_accounts_owned_by_issuing_client(self):
        generator = WorkloadGenerator(WorkloadConfig(contention=0.0))
        txs = generator.generate(10)
        state = generator.initial_state(txs)
        for tx in txs:
            for leg in tx.payload["transfers"]:
                assert state[f"account/{leg['source']}"]["owner"] == tx.client

    def test_repeated_generation_yields_fresh_ids(self):
        generator = WorkloadGenerator(WorkloadConfig())
        first = generator.generate(5)
        second = generator.generate(5)
        assert {t.tx_id for t in first}.isdisjoint({t.tx_id for t in second})

    def test_applications_are_spread_round_robin(self):
        generator = WorkloadGenerator(WorkloadConfig(contention=0.0, num_applications=3))
        txs = generator.generate(30)
        apps = {tx.application for tx in txs}
        assert apps == {"app-0", "app-1", "app-2"}

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(contention=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_applications=0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(WorkloadConfig()).generate(-1)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_generated_contention_tracks_configuration(self, contention, apps):
        config = WorkloadConfig(contention=contention, num_applications=apps, seed=3)
        generator = WorkloadGenerator(config)
        txs = [tx.with_timestamp(i + 1) for i, tx in enumerate(generator.generate(80))]
        graph = build_dependency_graph(txs)
        measured = graph.degree_of_contention()
        assert abs(measured - contention) < 0.25


class TestArrivalSchedules:
    def test_constant_rate_spacing(self):
        schedule = constant_rate(5, rate=10.0)
        assert list(schedule) == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
        assert schedule.offered_rate == pytest.approx(12.5)  # 5 arrivals over 0.4s

    def test_poisson_rate_is_monotone_and_seeded(self):
        a = poisson_rate(100, rate=50.0, seed=1)
        b = poisson_rate(100, rate=50.0, seed=1)
        c = poisson_rate(100, rate=50.0, seed=2)
        assert list(a) == list(b)
        assert list(a) != list(c)
        times = list(a)
        assert times == sorted(times)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            constant_rate(5, rate=0.0)
        with pytest.raises(ValueError):
            poisson_rate(-1, rate=5.0)


class TestZipfian:
    def test_probabilities_decrease(self):
        sampler = ZipfianSampler(population=10, exponent=1.0, seed=1)
        probs = [sampler.probability(i) for i in range(10)]
        assert probs == sorted(probs, reverse=True)
        assert sum(probs) == pytest.approx(1.0)

    def test_samples_within_range_and_skewed(self):
        sampler = ZipfianSampler(population=20, exponent=1.2, seed=5)
        samples = sampler.sample_many(2000)
        assert all(0 <= s < 20 for s in samples)
        head = sum(1 for s in samples if s < 3)
        assert head > len(samples) * 0.4

    def test_uniform_when_exponent_zero(self):
        sampler = ZipfianSampler(population=4, exponent=0.0)
        assert sampler.probability(0) == pytest.approx(0.25)


class TestLatencyStats:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_empty_stats(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.average == 0.0

    def test_summary_fields(self):
        stats = LatencyStats.from_samples([0.1, 0.2, 0.3, 0.4, 10.0])
        assert stats.count == 5
        assert stats.maximum == 10.0
        assert stats.p50 == pytest.approx(0.3)
        assert stats.average == pytest.approx(2.2)


class TestMetricsCollector:
    def test_completion_requires_all_measurement_peers(self):
        collector = MetricsCollector(measurement_peers=["e0", "e1"])
        collector.record_submission("tx", 0.0)
        collector.record_commit("e0", "tx", 1.0)
        assert collector.completed_count == 0
        collector.record_commit("e1", "tx", 1.5)
        assert collector.completed_count == 1
        assert collector.completion_times()["tx"] == 1.5

    def test_non_measurement_peers_are_ignored(self):
        collector = MetricsCollector(measurement_peers=["e0"])
        collector.record_submission("tx", 0.0)
        collector.record_commit("passive", "tx", 0.5)
        assert collector.completed_count == 0

    def test_summarise_window_and_latency(self):
        collector = MetricsCollector(measurement_peers=["e0"])
        for i in range(10):
            collector.record_submission(f"tx{i}", float(i))
            collector.record_commit("e0", f"tx{i}", float(i) + 0.5)
        metrics = collector.summarise("OXII", offered_load=1.0, warmup=2.0, horizon=10.0)
        assert metrics.committed == 8  # completions at 2.5 .. 9.5
        assert metrics.throughput == pytest.approx(1.0)
        assert metrics.latency_avg == pytest.approx(0.5)
        assert metrics.abort_rate == 0.0

    def test_aborts_counted_when_all_peers_abort(self):
        collector = MetricsCollector(measurement_peers=["e0", "e1"])
        collector.record_submission("tx", 0.0)
        collector.record_commit("e0", "tx", 1.0, aborted=True)
        collector.record_commit("e1", "tx", 1.0, aborted=True)
        metrics = collector.summarise("XOV", offered_load=1.0, warmup=0.0, horizon=2.0)
        assert metrics.aborted == 1
        assert metrics.committed == 0
        assert metrics.abort_rate == 1.0

    def test_duplicate_reports_ignored(self):
        collector = MetricsCollector(measurement_peers=["e0"])
        collector.record_submission("tx", 0.0)
        collector.record_commit("e0", "tx", 1.0)
        collector.record_commit("e0", "tx", 2.0)
        assert collector.completion_times()["tx"] == 1.0


class TestSaturationSweep:
    def _fake_run(self, capacity=1000.0):
        def run(load):
            throughput = min(load, capacity)
            latency = 0.05 if load <= capacity else 1.5
            return RunMetrics(
                paradigm="fake",
                offered_load=load,
                submitted=int(load),
                committed=int(throughput),
                aborted=0,
                duration=1.0,
                measurement_window=1.0,
                throughput=throughput,
                latency=LatencyStats.from_samples([latency]),
            )

        return run

    def test_peak_detected_just_below_saturation(self):
        result = sweep_offered_load(self._fake_run(1000.0), loads=[250, 500, 1000, 2000, 4000])
        assert result.peak.offered_load == 1000
        assert result.peak_throughput == 1000

    def test_all_saturated_returns_ceiling(self):
        result = sweep_offered_load(self._fake_run(100.0), loads=[500, 1000])
        assert result.peak_throughput == 100

    def test_empty_loads_rejected(self):
        with pytest.raises(ValueError):
            sweep_offered_load(self._fake_run(), loads=[])
