"""Tests for the multi-application workload suite.

Covers the three new generators' invariants (ownership, read-heaviness,
chain structure), their end-to-end runs under all three paradigms through
the declarative spec path (with seed-stable determinism), the automatic
workload → contract alignment, and the registry errors raised for unknown
workload names in specs.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.registry import workload_registry
from repro.contracts.supply_chain import SupplyChainContract
from repro.core.dependency_graph import build_dependency_graph
from repro.experiments import ExperimentSpec, SweepEngine, single_point_spec
from repro.workload import (
    KeyValueWorkload,
    SmallBankWorkload,
    SupplyChainWorkload,
    WorkloadConfig,
)

NEW_WORKLOADS = ("smallbank", "kvstore", "supply_chain")


def _stamped(transactions):
    return [tx.with_timestamp(i + 1) for i, tx in enumerate(transactions)]


class TestSmallBank:
    def test_registered(self):
        assert workload_registry.get("smallbank") is SmallBankWorkload
        assert SmallBankWorkload.contract == "accounting"

    def test_sources_owned_by_issuing_client(self):
        generator = SmallBankWorkload(
            WorkloadConfig(contention=0.3, conflict={"keyspace": 64, "write_set_size": 2})
        )
        txs = generator.generate(60)
        state = generator.initial_state(txs)
        for tx in txs:
            for leg in tx.payload["transfers"]:
                assert state[f"account/{leg['source']}"]["owner"] == tx.client

    def test_multi_leg_transactions(self):
        generator = SmallBankWorkload(WorkloadConfig(conflict={"write_set_size": 3}))
        txs = generator.generate(10)
        assert all(len(tx.payload["transfers"]) == 3 for tx in txs)

    def test_skew_produces_conflicts(self):
        config = WorkloadConfig(
            contention=0.3,
            conflict={"selection": "zipfian", "zipf_exponent": 1.2, "keyspace": 64},
        )
        graph = build_dependency_graph(_stamped(SmallBankWorkload(config).generate(100)))
        assert graph.edge_count > 0

    def test_spill_creates_cross_application_dependencies(self):
        config = WorkloadConfig(
            contention=0.5, conflict={"keyspace": 16, "spill": 0.8}
        )
        graph = build_dependency_graph(_stamped(SmallBankWorkload(config).generate(120)))
        assert graph.has_cross_application_dependency()


class TestKeyValueWorkload:
    def test_registered(self):
        assert workload_registry.get("kvstore") is KeyValueWorkload
        assert KeyValueWorkload.contract == "kvstore"

    def test_mostly_read_only(self):
        generator = KeyValueWorkload(WorkloadConfig(contention=0.1, seed=5))
        txs = generator.generate(200)
        read_only = sum(1 for tx in txs if tx.rw_set.is_read_only())
        assert read_only > 150
        assert read_only < 200  # but some writes do occur

    def test_read_set_size_honoured(self):
        generator = KeyValueWorkload(
            WorkloadConfig(contention=0.0, conflict={"read_set_size": 4, "keyspace": 1024})
        )
        txs = generator.generate(20)
        assert all(len(tx.rw_set.reads) == 4 for tx in txs)

    def test_near_conflict_free_graphs(self):
        config = WorkloadConfig(
            contention=0.05, conflict={"keyspace": 4096, "read_set_size": 3}
        )
        txs = _stamped(KeyValueWorkload(config).generate(150))
        graph = build_dependency_graph(txs)
        # Writes are rare and reads spread wide, so almost nothing conflicts.
        assert graph.degree_of_contention() < 0.1

    def test_skewed_reads_raise_contention(self):
        def contention_at(selection):
            config = WorkloadConfig(
                contention=0.05,
                conflict={"selection": selection, "read_set_size": 3, "zipf_exponent": 1.2},
            )
            txs = _stamped(KeyValueWorkload(config).generate(150))
            return build_dependency_graph(txs).degree_of_contention()

        # The rare writes land in the hot set, so the more the reads skew
        # towards it, the more transactions pick up a dependency.
        assert contention_at("zipfian") > contention_at("uniform")

    def test_initial_state_covers_reads(self):
        generator = KeyValueWorkload(WorkloadConfig(contention=0.2))
        txs = generator.generate(50)
        state = generator.initial_state(txs)
        for tx in txs:
            for key in tx.rw_set.reads:
                assert key in state


class TestSupplyChainWorkload:
    def _generator(self, contention=0.5, **conflict):
        conflict = {"keyspace": 64, "hot_fraction": 0.05, **conflict}
        return SupplyChainWorkload(
            WorkloadConfig(contention=contention, conflict=conflict, seed=11)
        )

    def test_registered(self):
        assert workload_registry.get("supply_chain") is SupplyChainWorkload
        assert SupplyChainWorkload.contract == "supply_chain"

    def test_chains_span_applications(self):
        generator = self._generator(contention=0.8)
        graph = build_dependency_graph(_stamped(generator.generate(120)))
        assert graph.has_cross_application_dependency()
        # Chain steps stack on few hot assets, so paths run deep.
        assert graph.critical_path_length() > 3

    def test_chain_steps_execute_in_order(self):
        """Replaying the stream sequentially commits every chain step."""
        generator = self._generator(contention=0.7)
        txs = generator.generate(80)
        state = dict(generator.initial_state(txs))
        contract = SupplyChainContract("app-0")
        aborted = 0
        for tx in txs:
            result = contract.execute(tx, state)
            aborted += result.is_abort
            state.update(result.updates)
        assert aborted == 0

    def test_registers_are_conflict_free(self):
        generator = self._generator(contention=0.0)
        graph = build_dependency_graph(_stamped(generator.generate(60)))
        assert graph.edge_count == 0
        assert generator.initial_state([]) == {}

    def test_describe_reports_chain_activity(self):
        generator = self._generator(contention=0.9)
        generator.generate(50)
        summary = generator.describe()
        assert summary["chain_steps"] > 0
        assert summary["tracked_assets"] >= 1


class TestEndToEnd:
    @pytest.mark.parametrize("generator", NEW_WORKLOADS)
    @pytest.mark.parametrize("paradigm", ("OX", "XOV", "OXII"))
    def test_runs_under_every_paradigm_deterministically(self, generator, paradigm):
        """Each workload completes a spec-driven run, twice, bit-identically."""

        def run_once():
            spec = single_point_spec(
                name=f"{generator}-{paradigm}",
                paradigm=paradigm,
                offered_load=150.0,
                contention=0.25,
                workload={"conflict": {"keyspace": 64, "selection": "zipfian"}},
                duration=1.0,
                drain=8.0,
                generator=generator,
            )
            row = SweepEngine(parallel=False).run(spec).rows[0]
            return row.metrics

        first, second = run_once(), run_once()
        assert first.submitted > 0
        assert first.committed + first.aborted > 0
        if paradigm != "XOV":
            assert first.aborted == 0
        assert first.as_dict() == second.as_dict()

    def test_contract_aligned_with_generator(self):
        """The deployment installs the contract the workload declares."""
        from repro.common.config import SystemConfig
        from repro.common.registry import paradigm_registry
        from repro.contracts.kvstore import KeyValueContract

        # execute_run swaps the default accounting contract for kvstore.
        from repro.paradigms.run import execute_run

        metrics = execute_run(
            "OXII",
            offered_load=100.0,
            duration=1.0,
            drain=5.0,
            generator="kvstore",
        )
        assert metrics.committed > 0

        # The alignment is visible on the deployment config level too.
        deployment = paradigm_registry.get("OXII")(SystemConfig(contract="kvstore"))
        contracts = deployment.build_contracts()
        assert isinstance(contracts.contract("app-0"), KeyValueContract)

    def test_undeclared_contract_respects_system_config(self):
        """A generator without a contract declaration never overrides the
        deployment's explicitly configured contract."""
        from repro.common.config import SystemConfig
        from repro.contracts.kvstore import KeyValueContract
        from repro.paradigms.run import execute_run
        from repro.workload import WorkloadBase

        class AnonymousKV(WorkloadBase):
            # Deliberately no `contract` declaration (inherits None).
            def _build_transaction(self, index):
                key = f"anon-{self._chooser.key_index()}"
                return KeyValueContract.make_transaction(
                    tx_id=f"anon-{index}",
                    application=self.application_for(index),
                    reads=[key],
                    writes={key: index},
                    client=self.client_for(index),
                )

            def initial_state(self, transactions):
                return {key: 0 for tx in transactions for key in tx.rw_set.keys}

        assert AnonymousKV.contract is None
        workload_registry.register("anon-kv", AnonymousKV)
        try:
            metrics = execute_run(
                "OXII",
                system_config=SystemConfig(contract="kvstore"),
                offered_load=100.0,
                duration=1.0,
                drain=5.0,
                generator="anon-kv",
            )
            assert metrics.committed > 0
            assert metrics.aborted == 0
        finally:
            workload_registry.unregister("anon-kv")

    def test_unknown_generator_in_spec_names_known_workloads(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "bad",
                "loads": [100],
                "scenarios": [{"name": "x", "paradigm": "OXII", "generator": "nope"}],
            }
        )
        with pytest.raises(ConfigurationError) as excinfo:
            SweepEngine(parallel=False).run(spec)
        message = str(excinfo.value)
        assert "unknown workload 'nope'" in message
        for name in ("accounting", "smallbank", "kvstore", "supply_chain"):
            assert name in message

    def test_unknown_generator_via_execute_run(self):
        from repro.paradigms.run import execute_run

        with pytest.raises(ConfigurationError, match="unknown workload 'missing'"):
            execute_run("OXII", generator="missing")
