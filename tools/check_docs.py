#!/usr/bin/env python
"""Documentation checker: dead-link detection + snippet execution.

Two passes over the repo's markdown (README.md and docs/*.md by default):

1. **Link check** — every relative markdown link ``[text](target)`` must
   resolve to an existing file (anchors are checked against the target
   file's headings, GitHub-slug style).  External ``http(s)://`` /
   ``mailto:`` links are not fetched.
2. **Snippet execution** — every fenced ```` ```python ```` block in the
   files passed with ``--run`` is executed, blocks of one file sharing a
   namespace (so a class defined in one block is usable in the next).
   Blocks containing the literal ellipsis placeholder ``...`` or preceded
   by an HTML comment ``<!-- docs-check: skip -->`` are skipped — they are
   illustrative fragments, not runnable programs.

Run from the repo root (CI does)::

    PYTHONPATH=src python tools/check_docs.py

Exit status is non-zero on any dead link or failing snippet.
"""

from __future__ import annotations

import argparse
import re
import sys
import traceback
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — markdown links, excluding images handled identically.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^```(\w*)\s*$")
SKIP_MARKER = "<!-- docs-check: skip -->"


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_code_blocks(text: str) -> str:
    """Markdown with fenced code blocks blanked (links inside code aren't links)."""
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def check_links(doc: Path) -> List[str]:
    """Dead relative links (and missing anchors) in ``doc``."""
    errors: List[str] = []
    text = _strip_code_blocks(doc.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        base = doc.parent / path_part if path_part else doc
        try:
            resolved = base.resolve()
        except OSError:  # pragma: no cover - malformed path
            errors.append(f"{doc}: unresolvable link {target!r}")
            continue
        if not resolved.is_relative_to(REPO_ROOT):
            # Repo-escaping relative links (e.g. the ../../actions/... CI
            # badge) address the GitHub web UI, not files — not checkable.
            continue
        if not resolved.exists():
            errors.append(f"{doc}: dead link {target!r} ({resolved} does not exist)")
            continue
        if anchor and resolved.suffix == ".md":
            headings = HEADING_RE.findall(resolved.read_text(encoding="utf-8"))
            slugs = {github_slug(h) for h in headings}
            if anchor.lower() not in slugs:
                errors.append(f"{doc}: link {target!r} points at missing anchor #{anchor}")
    return errors


def python_snippets(doc: Path) -> Iterator[Tuple[int, str, bool]]:
    """Yield ``(line_number, source, skipped)`` for each ```python block."""
    lines = doc.read_text(encoding="utf-8").splitlines()
    index = 0
    skip_next = False
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped == SKIP_MARKER:
            skip_next = True
            index += 1
            continue
        fence = FENCE_RE.match(stripped)
        if fence and fence.group(1) == "python":
            start = index + 1
            body: List[str] = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                body.append(lines[index])
                index += 1
            source = "\n".join(body)
            skipped = skip_next or "..." in source
            yield start + 1, source, skipped
            skip_next = False
        elif stripped and not stripped.startswith("```"):
            skip_next = False
        index += 1


def run_snippets(doc: Path) -> List[str]:
    """Execute every runnable python snippet of ``doc`` in a shared namespace."""
    errors: List[str] = []
    namespace: Dict[str, object] = {"__name__": f"docs_snippet_{doc.stem}"}
    ran = skipped = 0
    for line, source, skip in python_snippets(doc):
        if skip:
            skipped += 1
            continue
        try:
            code = compile(source, f"{doc}:{line}", "exec")
            exec(code, namespace)  # noqa: S102 - that is the point of the check
            ran += 1
        except Exception:
            errors.append(
                f"{doc}: snippet at line {line} failed:\n{traceback.format_exc(limit=4)}"
            )
    print(f"  {doc.relative_to(REPO_ROOT)}: {ran} snippet(s) executed, {skipped} skipped")
    return errors


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--docs",
        nargs="*",
        default=None,
        help="markdown files to link-check (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--run",
        nargs="*",
        default=None,
        help="markdown files whose python snippets are executed "
        "(default: docs/experiments.md docs/workloads.md)",
    )
    args = parser.parse_args(argv)

    docs = (
        [Path(p) for p in args.docs]
        if args.docs is not None
        else [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    )
    runnable = (
        [Path(p) for p in args.run]
        if args.run is not None
        else [
            REPO_ROOT / "docs" / "experiments.md",
            REPO_ROOT / "docs" / "workloads.md",
            REPO_ROOT / "docs" / "testing.md",
        ]
    )

    errors: List[str] = []
    print("link check:")
    for doc in docs:
        found = check_links(doc)
        errors.extend(found)
        status = "ok" if not found else f"{len(found)} dead"
        print(f"  {doc.relative_to(REPO_ROOT)}: {status}")

    print("snippet execution:")
    for doc in runnable:
        errors.extend(run_snippets(doc))

    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print("\ndocs ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
