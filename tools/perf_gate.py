#!/usr/bin/env python
"""Perf-regression gate: diff fresh benchmark rows against committed floors.

The ``perf-regression`` CI job runs the benchmark suite (which writes
``BENCH_results.json`` via ``benchmarks/conftest.py``), then invokes this
script to compare the fresh rows against ``benchmarks/baselines.json``.  A
metric that lands more than ``tolerance`` (default 20%) below its committed
baseline fails the job; so does a baseline entry with no matching row, since
a silently missing row would otherwise read as "no regression" forever.

Baselines are deliberately conservative (~40% of the throughput measured on
the development machine) so shared-runner noise does not flap the gate; the
additional ``tolerance`` headroom sits below *that*.  Raise the baselines when
the hot path gets faster — they are a ratchet, never a tripwire tuned to one
machine.

The script also maintains a trend history: every run appends its rows to
``--trend`` (default ``BENCH_trend.json``), which CI restores from cache and
uploads as an artifact, giving a per-commit throughput trajectory.

Usage::

    PYTHONPATH=src python tools/perf_gate.py \
        [--results BENCH_results.json] [--baselines benchmarks/baselines.json] \
        [--trend BENCH_trend.json]

``REPRO_BENCH_NO_GATE=1`` reports comparisons without failing (exit 0), the
same escape hatch the in-benchmark gates honour.

Baselines schema (``benchmarks/baselines.json``)::

    {
      "tolerance": 0.20,
      "entries": [
        {"benchmark": "execution_scaling",
         "match": {"block_size": 4096, "contention": "high"},
         "metric": "countdown_blocks_per_s",
         "baseline": 19.4},
        ...
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

OK = "ok"
REGRESSION = "regression"
MISSING = "missing"


def no_gate() -> bool:
    """True when REPRO_BENCH_NO_GATE requests report-only mode."""
    return os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0", "false")


def load_json(path: Path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def match_row(rows: List[dict], entry: dict) -> Optional[dict]:
    """Find the first row whose benchmark + ``match`` keys equal the entry's."""
    wanted = entry.get("match", {})
    for row in rows:
        if row.get("benchmark") != entry["benchmark"]:
            continue
        if all(row.get(key) == value for key, value in wanted.items()):
            return row
    return None


def evaluate(rows: List[dict], baselines: dict) -> List[dict]:
    """Compare every baseline entry against the fresh rows.

    Returns one finding per entry: ``{"entry", "status", "value", "floor"}``
    where status is ``ok``, ``regression`` (value below baseline*(1-tolerance))
    or ``missing`` (no matching row, or the row lacks the metric).
    """
    tolerance = float(baselines.get("tolerance", 0.20))
    findings = []
    for entry in baselines["entries"]:
        floor = entry["baseline"] * (1.0 - tolerance)
        row = match_row(rows, entry)
        value = row.get(entry["metric"]) if row is not None else None
        if value is None:
            status = MISSING
        elif value < floor:
            status = REGRESSION
        else:
            status = OK
        findings.append({"entry": entry, "status": status, "value": value, "floor": floor})
    return findings


def describe(finding: dict) -> str:
    entry = finding["entry"]
    where = ",".join(f"{k}={v}" for k, v in entry.get("match", {}).items()) or "-"
    value = finding["value"]
    shown = f"{value:.1f}" if isinstance(value, (int, float)) else "absent"
    return (
        f"[{finding['status']:>10}] {entry['benchmark']}({where}) {entry['metric']}: "
        f"{shown} vs floor {finding['floor']:.1f} (baseline {entry['baseline']})"
    )


def git_sha() -> str:
    sha = os.environ.get("GITHUB_SHA", "")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT, capture_output=True, text=True, check=True
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def merge_trend(trend_path: Path, rows: List[dict], findings: List[dict]) -> Dict:
    """Append this run's rows + gate verdicts to the trend history file."""
    history: Dict = {"runs": []}
    if trend_path.exists():
        try:
            loaded = load_json(trend_path)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history = loaded
        except (json.JSONDecodeError, OSError):
            pass  # a corrupt cache entry must not fail the gate; restart history
    history["runs"].append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "sha": git_sha(),
            # Distinct failure modes, recorded separately: "regressions" are
            # rows measurably below their floor, "missing" are baseline
            # entries no fresh row matched (a broken/renamed benchmark, which
            # would otherwise hide as "no regression" forever).
            "regressions": sum(1 for f in findings if f["status"] == REGRESSION),
            "missing": sum(1 for f in findings if f["status"] == MISSING),
            "rows": rows,
        }
    )
    with open(trend_path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return history


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=Path("BENCH_results.json"))
    parser.add_argument(
        "--baselines", type=Path, default=REPO_ROOT / "benchmarks" / "baselines.json"
    )
    parser.add_argument("--trend", type=Path, default=Path("BENCH_trend.json"))
    args = parser.parse_args(argv)

    if not args.results.exists():
        print(f"perf_gate: results file {args.results} not found (did the bench run?)")
        return 0 if no_gate() else 1
    rows = load_json(args.results)
    baselines = load_json(args.baselines)

    findings = evaluate(rows, baselines)
    for finding in findings:
        print(describe(finding))
    merge_trend(args.trend, rows, findings)

    regressed = [f for f in findings if f["status"] == REGRESSION]
    absent = [f for f in findings if f["status"] == MISSING]
    if regressed or absent:
        parts = []
        if regressed:
            parts.append(f"{len(regressed)} below floor")
        if absent:
            parts.append(f"{len(absent)} with no matching row/metric")
        print(f"perf_gate: {' and '.join(parts)} (of {len(findings)} entries)")
        if no_gate():
            print("perf_gate: REPRO_BENCH_NO_GATE set — reporting only")
            return 0
        return 1
    print(f"perf_gate: all {len(findings)} entries within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
